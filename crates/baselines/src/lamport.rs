//! Lamport's timestamp algorithm (CACM 1978) — the ancestor of
//! Ricart–Agrawala, included as an extension comparator (the paper's future
//! work proposes comparing against more algorithms).
//!
//! Every node maintains a replicated request queue ordered by
//! `(timestamp, node)`. A requester broadcasts REQUEST, everyone replies
//! (ack), and the requester enters once (a) its request heads its local
//! queue and (b) it has heard a later-timestamped message from every other
//! node. RELEASE is broadcast at exit. `3(N−1)` messages per CS.
//!
//! Note: Lamport's algorithm **requires FIFO channels** (the queue/ack
//! reasoning breaks if a RELEASE overtakes its REQUEST); tests use the
//! constant-delay (FIFO) model, as the paper's simulation does.

use rcv_simnet::{Ctx, MutexProtocol, NodeId, ProtocolMessage};

use crate::common::{LamportClock, Priority};

/// Lamport algorithm message.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LpMessage {
    /// Timestamped CS request.
    Request {
        /// Lamport timestamp of the request.
        ts: u64,
    },
    /// Acknowledgement carrying the replier's clock.
    Ack {
        /// Replier's clock value, proving a later message.
        ts: u64,
    },
    /// The sender's request is finished.
    Release {
        /// Sender's clock value.
        ts: u64,
    },
}

impl ProtocolMessage for LpMessage {
    fn kind(&self) -> &'static str {
        match self {
            LpMessage::Request { .. } => "REQUEST",
            LpMessage::Ack { .. } => "ACK",
            LpMessage::Release { .. } => "RELEASE",
        }
    }

    fn wire_size(&self) -> usize {
        12
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Phase {
    Idle,
    Waiting,
    InCs,
}

/// One Lamport-algorithm node.
///
/// `Clone`/`Debug`/`Hash` exist for the exhaustive model checker
/// (`rcv-mc`), which snapshots and fingerprints whole-system states.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Lamport {
    me: NodeId,
    n: usize,
    clock: LamportClock,
    phase: Phase,
    /// Replicated request queue (kept sorted by priority).
    queue: Vec<Priority>,
    /// Timestamp of the last message received from each peer.
    last_heard: Vec<u64>,
    my_priority: Option<Priority>,
}

impl Lamport {
    /// Creates node `me` of an `n`-node system.
    pub fn new(me: NodeId, n: usize) -> Self {
        assert!(n >= 1 && me.index() < n);
        Lamport {
            me,
            n,
            clock: LamportClock::new(),
            phase: Phase::Idle,
            queue: Vec::new(),
            last_heard: vec![0; n],
            my_priority: None,
        }
    }

    fn insert_sorted(&mut self, p: Priority) {
        if !self.queue.contains(&p) {
            let pos = self.queue.partition_point(|q| *q < p);
            self.queue.insert(pos, p);
        }
    }

    /// Lamport's entry condition: my request heads the queue and every
    /// other node has been heard after my request's timestamp.
    fn try_enter(&mut self, ctx: &mut Ctx<'_, LpMessage>) {
        if self.phase != Phase::Waiting {
            return;
        }
        let Some(mine) = self.my_priority else { return };
        if self.queue.first() != Some(&mine) {
            return;
        }
        let all_later = NodeId::all(self.n)
            .filter(|&p| p != self.me)
            .all(|p| self.last_heard[p.index()] > mine.ts);
        if all_later {
            self.phase = Phase::InCs;
            ctx.enter_cs();
        }
    }
}

impl MutexProtocol for Lamport {
    type Message = LpMessage;

    fn name(&self) -> &'static str {
        "lamport"
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, LpMessage>) {
        debug_assert_eq!(self.phase, Phase::Idle);
        let ts = self.clock.tick();
        let mine = Priority::new(ts, self.me);
        self.my_priority = Some(mine);
        self.insert_sorted(mine);
        self.phase = Phase::Waiting;
        for peer in NodeId::all(self.n).filter(|&p| p != self.me) {
            ctx.send(peer, LpMessage::Request { ts });
        }
        self.try_enter(ctx); // N = 1 degenerate case
    }

    fn on_message(&mut self, from: NodeId, msg: LpMessage, ctx: &mut Ctx<'_, LpMessage>) {
        match msg {
            LpMessage::Request { ts } => {
                let now = self.clock.observe(ts);
                self.last_heard[from.index()] = ts;
                self.insert_sorted(Priority::new(ts, from));
                ctx.send(from, LpMessage::Ack { ts: now });
            }
            LpMessage::Ack { ts } => {
                self.clock.observe(ts);
                self.last_heard[from.index()] = self.last_heard[from.index()].max(ts);
            }
            LpMessage::Release { ts } => {
                self.clock.observe(ts);
                self.last_heard[from.index()] = self.last_heard[from.index()].max(ts);
                self.queue.retain(|p| p.node != from);
            }
        }
        self.try_enter(ctx);
    }

    fn on_cs_released(&mut self, ctx: &mut Ctx<'_, LpMessage>) {
        debug_assert_eq!(self.phase, Phase::InCs);
        self.phase = Phase::Idle;
        if let Some(mine) = self.my_priority.take() {
            self.queue.retain(|p| *p != mine);
        }
        let ts = self.clock.tick();
        for peer in NodeId::all(self.n).filter(|&p| p != self.me) {
            ctx.send(peer, LpMessage::Release { ts });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcv_simnet::{BurstOnce, DelayModel, Engine, FixedTrace, SimConfig, SimTime};

    fn run_burst(n: usize, seed: u64) -> rcv_simnet::SimReport {
        let cfg = SimConfig {
            delay: DelayModel::paper_constant(),
            ..SimConfig::paper(n, seed)
        };
        Engine::new(cfg, BurstOnce, Lamport::new).run()
    }

    #[test]
    fn burst_is_safe_and_live() {
        for n in [1, 2, 3, 6, 12, 24] {
            let r = run_burst(n, 0);
            assert!(r.is_safe(), "N={n}");
            assert_eq!(r.metrics.completed(), n, "N={n}");
        }
    }

    #[test]
    fn message_complexity_is_3n_minus_3() {
        // Per CS execution: N-1 requests, N-1 acks, N-1 releases.
        let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(1))]);
        for n in [4, 8, 16] {
            let cfg = SimConfig::paper(n, 0);
            let r = Engine::new(cfg, trace.clone(), Lamport::new).run();
            assert_eq!(r.metrics.messages_sent() as usize, 3 * (n - 1), "N={n}");
        }
    }

    #[test]
    fn burst_serves_in_id_order() {
        let n = 5;
        let cfg = SimConfig::paper(n, 0);
        let (r, _) = Engine::new(cfg, BurstOnce, Lamport::new).run_collecting();
        let mut entries: Vec<(u64, u32)> = r
            .metrics
            .records()
            .iter()
            .map(|rec| (rec.entered.unwrap().ticks(), rec.node.raw()))
            .collect();
        entries.sort();
        assert_eq!(
            entries.iter().map(|&(_, id)| id).collect::<Vec<_>>(),
            (0..n as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn repeated_requests_progress() {
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(0)),
            (SimTime::from_ticks(40), NodeId::new(0)),
            (SimTime::from_ticks(80), NodeId::new(1)),
        ]);
        let cfg = SimConfig::paper(3, 0);
        let r = Engine::new(cfg, trace, Lamport::new).run();
        assert_eq!(r.metrics.completed(), 3);
        assert!(r.is_safe());
    }
}
