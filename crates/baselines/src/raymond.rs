//! Raymond's tree algorithm (TOCS 1989) — a *structured* comparator kept as
//! an extension (the paper contrasts its own non-structured approach with
//! tree-based algorithms, §1-2, citing Raymond's 4-messages-at-heavy-load
//! figure).
//!
//! Nodes form a static logical tree (here: the balanced binary tree on node
//! ids, root 0). Each node keeps a `holder` pointer along the path towards
//! the privilege; requests percolate rootwards one hop at a time, and the
//! privilege travels back, reversing `holder` pointers as it goes.

use std::collections::VecDeque;

use rcv_simnet::{Ctx, MutexProtocol, NodeId, ProtocolMessage};

/// Raymond message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RyMessage {
    /// Ask the holder-side neighbour for the privilege.
    Request,
    /// The privilege token moves one tree hop.
    Privilege,
}

impl ProtocolMessage for RyMessage {
    fn kind(&self) -> &'static str {
        match self {
            RyMessage::Request => "REQUEST",
            RyMessage::Privilege => "PRIVILEGE",
        }
    }

    fn wire_size(&self) -> usize {
        4
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Waiting,
    InCs,
}

/// One Raymond node on the binary tree `parent(i) = (i-1)/2`.
pub struct Raymond {
    me: NodeId,
    /// Next hop towards the privilege; `me` when this node holds it.
    holder: NodeId,
    /// Local FIFO of pending requests (neighbours and possibly `me`).
    queue: VecDeque<NodeId>,
    /// Whether a REQUEST to `holder` is already in flight.
    asked: bool,
    phase: Phase,
}

impl Raymond {
    /// Creates node `me` of an `n`-node system; node 0 initially holds the
    /// privilege and all `holder` pointers aim at the parent.
    pub fn new(me: NodeId, n: usize) -> Self {
        assert!(n >= 1 && me.index() < n);
        let holder = if me.index() == 0 {
            me
        } else {
            Self::parent(me)
        };
        Raymond {
            me,
            holder,
            queue: VecDeque::new(),
            asked: false,
            phase: Phase::Idle,
        }
    }

    /// Parent in the static binary tree.
    fn parent(node: NodeId) -> NodeId {
        NodeId::new((node.raw() - 1) / 2)
    }

    /// Whether this node currently holds the privilege (white-box tests).
    pub fn holds_privilege(&self) -> bool {
        self.holder == self.me
    }

    /// Raymond's `ASSIGN_PRIVILEGE`: a holding, non-executing node with a
    /// non-empty queue passes the privilege to the queue head.
    fn assign_privilege(&mut self, ctx: &mut Ctx<'_, RyMessage>) {
        if self.holder != self.me || self.phase == Phase::InCs || self.queue.is_empty() {
            return;
        }
        let head = self.queue.pop_front().expect("non-empty");
        self.asked = false;
        if head == self.me {
            self.phase = Phase::InCs;
            ctx.enter_cs();
        } else {
            self.holder = head;
            ctx.send(head, RyMessage::Privilege);
        }
    }

    /// Raymond's `MAKE_REQUEST`: a non-holding node with pending requests
    /// asks its holder-side neighbour, once.
    fn make_request(&mut self, ctx: &mut Ctx<'_, RyMessage>) {
        if self.holder == self.me || self.queue.is_empty() || self.asked {
            return;
        }
        self.asked = true;
        ctx.send(self.holder, RyMessage::Request);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, RyMessage>) {
        self.assign_privilege(ctx);
        self.make_request(ctx);
    }
}

impl MutexProtocol for Raymond {
    type Message = RyMessage;

    fn name(&self) -> &'static str {
        "raymond"
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, RyMessage>) {
        debug_assert_eq!(self.phase, Phase::Idle);
        self.phase = Phase::Waiting;
        self.queue.push_back(self.me);
        self.pump(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: RyMessage, ctx: &mut Ctx<'_, RyMessage>) {
        match msg {
            RyMessage::Request => {
                self.queue.push_back(from);
                self.pump(ctx);
            }
            RyMessage::Privilege => {
                debug_assert_eq!(self.holder, from, "privilege from a non-holder neighbour");
                self.holder = self.me;
                self.pump(ctx);
            }
        }
    }

    fn on_cs_released(&mut self, ctx: &mut Ctx<'_, RyMessage>) {
        debug_assert_eq!(self.phase, Phase::InCs);
        self.phase = Phase::Idle;
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcv_simnet::{BurstOnce, DelayModel, Engine, FixedTrace, SimConfig, SimTime};

    fn run_burst(n: usize, seed: u64) -> rcv_simnet::SimReport {
        let cfg = SimConfig {
            delay: DelayModel::paper_constant(),
            ..SimConfig::paper(n, seed)
        };
        Engine::new(cfg, BurstOnce, Raymond::new).run()
    }

    #[test]
    fn burst_is_safe_and_live() {
        for n in [1, 2, 3, 7, 15, 31] {
            let r = run_burst(n, 0);
            assert!(r.is_safe(), "N={n}");
            assert_eq!(r.metrics.completed(), n, "N={n}");
        }
    }

    #[test]
    fn root_enters_for_free() {
        let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(0))]);
        let cfg = SimConfig::paper(7, 0);
        let r = Engine::new(cfg, trace, Raymond::new).run();
        assert_eq!(r.metrics.messages_sent(), 0);
    }

    #[test]
    fn leaf_costs_two_messages_per_tree_hop() {
        // Node 3 is at depth 2 of a 7-node tree: 2 requests up + 2
        // privilege hops down.
        let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(3))]);
        let cfg = SimConfig::paper(7, 0);
        let r = Engine::new(cfg, trace, Raymond::new).run();
        assert_eq!(r.metrics.messages_sent(), 4);
        // Response time: 4 hops * Tn.
        assert_eq!(r.metrics.response_time().mean, 20.0);
    }

    #[test]
    fn privilege_pointer_flips_along_path() {
        let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(3))]);
        let cfg = SimConfig::paper(7, 0);
        let (r, nodes) = Engine::new(cfg, trace, Raymond::new).run_collecting();
        assert!(r.is_safe());
        assert!(
            nodes[3].holds_privilege(),
            "privilege must end at the requester"
        );
        assert!(!nodes[0].holds_privilege());
    }

    #[test]
    fn heavy_load_message_count_stays_low() {
        // Raymond's selling point: ~4 messages per CS under load, ~O(log N)
        // otherwise. In a 15-node burst the average must stay below
        // 2*log2(15) ≈ 7.8.
        let r = run_burst(15, 1);
        let nme = r.metrics.nme().unwrap();
        assert!(nme < 8.0, "NME {nme} unexpectedly high for Raymond");
    }

    #[test]
    fn interleaved_requests_progress() {
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(5)),
            (SimTime::from_ticks(3), NodeId::new(1)),
            (SimTime::from_ticks(6), NodeId::new(6)),
            (SimTime::from_ticks(100), NodeId::new(5)),
        ]);
        let cfg = SimConfig::paper(7, 2);
        let r = Engine::new(cfg, trace, Raymond::new).run();
        assert!(r.is_safe());
        assert_eq!(r.metrics.completed(), 4);
    }
}
