//! Ricart–Agrawala with the Roucairol–Carvalho dynamic optimization — the
//! algorithm behind the paper's §2 remark that "under light load, the
//! average number of messages can be reduced to N−1 by using a dynamic
//! algorithm \[15\]".
//!
//! The idea: a REPLY from `j` is a *transferable permission* that `i`
//! keeps until `j` next requests. A node only REQUESTs peers whose
//! permission it does not currently hold, so a node that repeatedly enters
//! an uncontended CS pays **zero** messages after its first round, and the
//! per-CS cost ranges from 0 to `2(N−1)`.
//!
//! Correctness hinges on the pair-permission invariant: for every pair
//! `{i, j}`, at most one side holds the permission at any time (it is
//! created by a REPLY and destroyed by granting one). When a waiting node
//! grants a higher-priority request it loses that permission and must
//! re-REQUEST immediately.

use rcv_simnet::{Ctx, MutexProtocol, NodeId, ProtocolMessage};

use crate::common::{LamportClock, Priority};

/// Message type (same shapes as classic RA).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RdMessage {
    /// Timestamped CS request.
    Request {
        /// Lamport timestamp of the request.
        ts: u64,
    },
    /// Permission transfer.
    Reply,
}

impl ProtocolMessage for RdMessage {
    fn kind(&self) -> &'static str {
        match self {
            RdMessage::Request { .. } => "REQUEST",
            RdMessage::Reply => "REPLY",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            RdMessage::Request { .. } => 12,
            RdMessage::Reply => 4,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Waiting,
    InCs,
}

/// One Roucairol–Carvalho node.
pub struct RaDynamic {
    me: NodeId,
    n: usize,
    clock: LamportClock,
    phase: Phase,
    my_priority: Option<Priority>,
    /// `true` ⇔ this node currently holds `j`'s permission.
    holds: Vec<bool>,
    /// `true` ⇔ a REQUEST of mine is pending at `j` (prevents duplicate
    /// re-requests when granting while waiting, which would draw duplicate
    /// replies).
    asked: Vec<bool>,
    /// Peers whose requests were deferred during my CS/stronger wait.
    deferred: Vec<NodeId>,
}

impl RaDynamic {
    /// Creates node `me` of an `n`-node system (no permissions held).
    pub fn new(me: NodeId, n: usize) -> Self {
        assert!(n >= 1 && me.index() < n);
        let mut holds = vec![false; n];
        holds[me.index()] = true; // own consent is implicit
        RaDynamic {
            me,
            n,
            clock: LamportClock::new(),
            phase: Phase::Idle,
            my_priority: None,
            holds,
            asked: vec![false; n],
            deferred: Vec::new(),
        }
    }

    /// Whether this node currently holds `j`'s permission (white-box).
    pub fn holds_permission_of(&self, j: NodeId) -> bool {
        self.holds[j.index()]
    }

    fn have_all(&self) -> bool {
        self.holds.iter().all(|&h| h)
    }

    fn try_enter(&mut self, ctx: &mut Ctx<'_, RdMessage>) {
        if self.phase == Phase::Waiting && self.have_all() {
            self.phase = Phase::InCs;
            ctx.enter_cs();
        }
    }
}

impl MutexProtocol for RaDynamic {
    type Message = RdMessage;

    fn name(&self) -> &'static str {
        "ra-dynamic"
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, RdMessage>) {
        debug_assert_eq!(self.phase, Phase::Idle);
        let ts = self.clock.tick();
        self.my_priority = Some(Priority::new(ts, self.me));
        self.phase = Phase::Waiting;
        for peer in NodeId::all(self.n).filter(|&p| p != self.me) {
            if !self.holds[peer.index()] {
                self.asked[peer.index()] = true;
                ctx.send(peer, RdMessage::Request { ts });
            }
        }
        self.try_enter(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: RdMessage, ctx: &mut Ctx<'_, RdMessage>) {
        match msg {
            RdMessage::Request { ts } => {
                self.clock.observe(ts);
                let their = Priority::new(ts, from);
                let mine_wins = match (self.phase, self.my_priority) {
                    (Phase::InCs, _) => true,
                    (Phase::Waiting, Some(mine)) => mine < their,
                    _ => false,
                };
                if mine_wins {
                    if !self.deferred.contains(&from) {
                        self.deferred.push(from);
                    }
                } else {
                    // Grant: the pair-permission moves to `from`.
                    self.holds[from.index()] = false;
                    ctx.send(from, RdMessage::Reply);
                    // Roucairol-Carvalho twist: if I am still waiting I
                    // just gave my permission away and must re-request it —
                    // unless a REQUEST of mine is already pending at `from`
                    // (sent at request time, before I knew I'd lose).
                    if self.phase == Phase::Waiting && !self.asked[from.index()] {
                        let mine = self.my_priority.expect("waiting implies a priority");
                        self.asked[from.index()] = true;
                        ctx.send(from, RdMessage::Request { ts: mine.ts });
                    }
                }
            }
            RdMessage::Reply => {
                debug_assert_eq!(self.phase, Phase::Waiting, "reply outside a wait");
                self.holds[from.index()] = true;
                self.asked[from.index()] = false;
                self.try_enter(ctx);
            }
        }
    }

    fn on_cs_released(&mut self, ctx: &mut Ctx<'_, RdMessage>) {
        debug_assert_eq!(self.phase, Phase::InCs);
        self.phase = Phase::Idle;
        self.my_priority = None;
        for peer in core::mem::take(&mut self.deferred) {
            self.holds[peer.index()] = false;
            ctx.send(peer, RdMessage::Reply);
        }
        // Permissions of everyone *not* deferred are kept — that is the
        // whole optimization.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcv_simnet::{BurstOnce, DelayModel, Engine, FixedTrace, SimConfig, SimTime};

    fn run_burst(n: usize, seed: u64) -> rcv_simnet::SimReport {
        // FIFO (constant) delivery: the RC optimization, like Lamport's
        // algorithm, is classically stated for FIFO channels.
        let cfg = SimConfig {
            delay: DelayModel::paper_constant(),
            ..SimConfig::paper(n, seed)
        };
        Engine::new(cfg, BurstOnce, RaDynamic::new).run()
    }

    #[test]
    fn burst_is_safe_and_live() {
        for n in [1, 2, 3, 6, 12, 24] {
            for seed in 0..3 {
                let r = run_burst(n, seed);
                assert!(r.is_safe(), "N={n} seed={seed}");
                assert_eq!(r.metrics.completed(), n, "N={n} seed={seed}");
            }
        }
    }

    #[test]
    fn repeat_requester_pays_zero_after_first_round() {
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(2)),
            (SimTime::from_ticks(100), NodeId::new(2)),
            (SimTime::from_ticks(200), NodeId::new(2)),
        ]);
        let cfg = SimConfig::paper(6, 0);
        let r = Engine::new(cfg, trace, RaDynamic::new).run();
        assert_eq!(r.metrics.completed(), 3);
        // First round: 2(N-1) = 10; rounds 2 and 3: free.
        assert_eq!(r.metrics.messages_sent(), 10);
    }

    #[test]
    fn alternating_pair_costs_two_messages_per_round() {
        // After warm-up, each handover between two alternating requesters
        // costs exactly REQUEST + REPLY for the contended pair... plus
        // nothing for the other peers whose permissions are kept.
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(0)),
            (SimTime::from_ticks(100), NodeId::new(1)),
            (SimTime::from_ticks(200), NodeId::new(0)),
            (SimTime::from_ticks(300), NodeId::new(1)),
        ]);
        let cfg = SimConfig::paper(5, 0);
        let r = Engine::new(cfg, trace, RaDynamic::new).run();
        assert_eq!(r.metrics.completed(), 4);
        // Round 1 (N0): 2*4 = 8. Round 2 (N1): needs all 4 peers = 8.
        // Rounds 3, 4: only the 0<->1 permission moves: 2 each.
        assert_eq!(r.metrics.messages_sent(), 8 + 8 + 2 + 2);
    }

    #[test]
    fn pair_permission_invariant_holds_at_quiescence() {
        let cfg = SimConfig::paper(7, 3);
        let (r, nodes) = Engine::new(cfg, BurstOnce, RaDynamic::new).run_collecting();
        assert!(r.is_safe());
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let a = nodes[i].holds_permission_of(NodeId::new(j as u32));
                let b = nodes[j].holds_permission_of(NodeId::new(i as u32));
                assert!(
                    !(a && b),
                    "pair ({i},{j}): both sides hold the permission simultaneously"
                );
            }
        }
    }

    #[test]
    fn waiting_granter_rerequests_and_still_completes() {
        // N1 (stronger, earlier ts via engine determinism) and N3 compete;
        // the loser must give away and re-request, and both finish.
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(3)),
            (SimTime::from_ticks(2), NodeId::new(1)),
        ]);
        let cfg = SimConfig::paper(5, 1);
        let r = Engine::new(cfg, trace, RaDynamic::new).run();
        assert!(r.is_safe());
        assert_eq!(r.metrics.completed(), 2);
    }
}
