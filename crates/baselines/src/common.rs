//! Shared building blocks for the baseline algorithms: Lamport logical
//! clocks and totally ordered request priorities.

use core::cmp::Ordering;

use rcv_simnet::NodeId;

/// A Lamport logical clock (Lamport 1978), as used by Ricart–Agrawala,
/// Lamport's algorithm and Maekawa's priority scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct LamportClock {
    value: u64,
}

impl LamportClock {
    /// Fresh clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Local event: advances and returns the new value.
    pub fn tick(&mut self) -> u64 {
        self.value += 1;
        self.value
    }

    /// Message receipt carrying `observed`: merges and advances.
    pub fn observe(&mut self, observed: u64) -> u64 {
        self.value = self.value.max(observed) + 1;
        self.value
    }
}

/// A request priority: smaller `(timestamp, node)` wins — the classic total
/// order over requests used by all timestamp-based baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Priority {
    /// Lamport timestamp at request time.
    pub ts: u64,
    /// Requesting node (tie breaker).
    pub node: NodeId,
}

impl Priority {
    /// Convenience constructor.
    pub fn new(ts: u64, node: NodeId) -> Self {
        Priority { ts, node }
    }
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.ts, self.node).cmp(&(other.ts, other.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_monotonically() {
        let mut c = LamportClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn observe_jumps_past_remote() {
        let mut c = LamportClock::new();
        c.tick();
        assert_eq!(c.observe(10), 11);
        assert_eq!(c.observe(3), 12, "merge never goes backwards");
    }

    #[test]
    fn priority_orders_by_ts_then_node() {
        let a = Priority::new(1, NodeId::new(5));
        let b = Priority::new(2, NodeId::new(0));
        let c = Priority::new(1, NodeId::new(6));
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }
}
