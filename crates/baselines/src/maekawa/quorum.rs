//! Grid quorum construction for Maekawa's algorithm.
//!
//! Maekawa's original paper builds √N-sized quorums from finite projective
//! planes, which only exist for `N = k² + k + 1` with prime-power `k`. The
//! standard any-N surrogate — and the substitution documented in DESIGN.md —
//! is the **grid**: arrange the nodes in a ⌈√N⌉-wide lattice; node `i`'s
//! quorum is its whole row plus its whole column (including itself).
//!
//! Pairwise intersection holds even for a ragged last row: for nodes
//! `i=(rᵢ,cᵢ)` and `j=(rⱼ,cⱼ)`, one of the crossing cells `(rᵢ,cⱼ)` /
//! `(rⱼ,cᵢ)` always exists — a crossing cell can only be missing in the
//! last row, and if both crossings are missing both nodes *are* in the last
//! row and share it entirely. `quorums_intersect` verifies this property in
//! the test suite for every N up to 200.

use rcv_simnet::NodeId;

/// The quorum system: one node set per node.
#[derive(Clone, Debug)]
pub struct QuorumSystem {
    quorums: Vec<Vec<NodeId>>,
}

impl QuorumSystem {
    /// Builds grid quorums for an `n`-node system.
    pub fn grid(n: usize) -> Self {
        assert!(n >= 1);
        let k = (n as f64).sqrt().ceil() as usize; // grid width
        let mut quorums = Vec::with_capacity(n);
        for i in 0..n {
            let (r, c) = (i / k, i % k);
            let mut q: Vec<usize> = Vec::new();
            // Whole row r:
            for cc in 0..k {
                let cell = r * k + cc;
                if cell < n {
                    q.push(cell);
                }
            }
            // Whole column c:
            for rr in 0..n.div_ceil(k) {
                let cell = rr * k + c;
                if cell < n && !q.contains(&cell) {
                    q.push(cell);
                }
            }
            q.sort_unstable();
            quorums.push(q.into_iter().map(|x| NodeId::new(x as u32)).collect());
        }
        QuorumSystem { quorums }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.quorums.len()
    }

    /// The quorum of `node` (always contains `node` itself).
    pub fn quorum(&self, node: NodeId) -> &[NodeId] {
        &self.quorums[node.index()]
    }

    /// Average quorum size (for the analytic cross-checks: ~2√N − 1).
    pub fn mean_size(&self) -> f64 {
        let total: usize = self.quorums.iter().map(|q| q.len()).sum();
        total as f64 / self.quorums.len() as f64
    }

    /// Verifies the defining property: every two quorums intersect.
    pub fn quorums_intersect(&self) -> bool {
        for (i, a) in self.quorums.iter().enumerate() {
            for b in &self.quorums[i + 1..] {
                if !a.iter().any(|x| b.contains(x)) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether every node is a member of its own quorum (required by the
    /// protocol's self-arbitration).
    pub fn self_membership(&self) -> bool {
        self.quorums
            .iter()
            .enumerate()
            .all(|(i, q)| q.contains(&NodeId::new(i as u32)))
    }

    /// Maekawa's original construction — the paper's "first method
    /// mentioned in \[9\]": quorums are the lines of a **finite projective
    /// plane** of order `q`, size `q + 1 ≈ √N`, any two meeting in exactly
    /// one point. Only exists when `n = q² + q + 1` for a prime `q` (we
    /// restrict to prime orders; prime powers would need extension-field
    /// arithmetic for no experimental benefit). Returns `None` for other N.
    ///
    /// Each node must belong to its own quorum; a point does not lie on
    /// its same-coordinates line in general, so a perfect matching between
    /// points and the lines through them is computed (the incidence graph
    /// is `(q+1)`-regular bipartite, so one always exists by Hall's
    /// theorem).
    pub fn projective_plane(n: usize) -> Option<Self> {
        let q = (1..=64usize).find(|q| q * q + q + 1 == n)?;
        if !is_prime(q) {
            return None;
        }
        let points = enumerate_projective(q);
        debug_assert_eq!(points.len(), n);
        // Lines have the same normalized coordinate representatives.
        let lines = &points;

        // incidence[l] = point indices on line l.
        let on_line = |l: &[usize; 3], p: &[usize; 3]| -> bool {
            (l[0] * p[0] + l[1] * p[1] + l[2] * p[2]).is_multiple_of(q)
        };
        let mut incidence: Vec<Vec<usize>> = Vec::with_capacity(n);
        for l in lines {
            let members: Vec<usize> = (0..n).filter(|&pi| on_line(l, &points[pi])).collect();
            debug_assert_eq!(members.len(), q + 1, "a line of PG(2,{q}) has q+1 points");
            incidence.push(members);
        }

        // Match point i to a distinct line through i (Kuhn's algorithm on
        // the point→line incidence).
        let lines_through: Vec<Vec<usize>> = (0..n)
            .map(|pi| (0..n).filter(|&li| incidence[li].contains(&pi)).collect())
            .collect();
        let mut line_owner: Vec<Option<usize>> = vec![None; n];
        fn try_assign(
            point: usize,
            lines_through: &[Vec<usize>],
            line_owner: &mut [Option<usize>],
            visited: &mut [bool],
        ) -> bool {
            for &li in &lines_through[point] {
                if visited[li] {
                    continue;
                }
                visited[li] = true;
                if line_owner[li].is_none()
                    || try_assign(line_owner[li].unwrap(), lines_through, line_owner, visited)
                {
                    line_owner[li] = Some(point);
                    return true;
                }
            }
            false
        }
        for point in 0..n {
            let mut visited = vec![false; n];
            if !try_assign(point, &lines_through, &mut line_owner, &mut visited) {
                return None; // cannot happen for a regular bipartite graph
            }
        }
        let mut quorums: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (li, owner) in line_owner.iter().enumerate() {
            let point = owner.expect("perfect matching");
            let mut members: Vec<NodeId> = incidence[li]
                .iter()
                .map(|&m| NodeId::new(m as u32))
                .collect();
            members.sort_unstable();
            quorums[point] = members;
        }
        Some(QuorumSystem { quorums })
    }

    /// The best available construction: projective plane when N permits,
    /// grid otherwise.
    pub fn best(n: usize) -> Self {
        Self::projective_plane(n).unwrap_or_else(|| Self::grid(n))
    }

    /// Agrawal–El Abbadi **tree quorums** (TOCS 1991, the paper's
    /// reference \[1\]): arrange the nodes in a complete binary tree; node
    /// `i`'s quorum is the root-to-`i` path *plus* the path extended from
    /// `i` down to a leaf (leftmost). Any two root-anchored paths share at
    /// least the root, giving intersection with quorum size `O(log N)` —
    /// but, as the paper's §2 points out, the root sits in *every* quorum,
    /// so the scheme degenerates towards a centralized algorithm when the
    /// root is always available. Kept as a comparison point for exactly
    /// that discussion.
    pub fn tree(n: usize) -> Self {
        assert!(n >= 1);
        let parent = |i: usize| (i - 1) / 2;
        let mut quorums = Vec::with_capacity(n);
        for i in 0..n {
            let mut q = vec![i];
            // Upwards to the root.
            let mut cur = i;
            while cur != 0 {
                cur = parent(cur);
                q.push(cur);
            }
            // Downwards to a leaf (leftmost existing child each step).
            let mut cur = i;
            loop {
                let left = 2 * cur + 1;
                let right = 2 * cur + 2;
                if left < n {
                    cur = left;
                } else if right < n {
                    cur = right;
                } else {
                    break;
                }
                q.push(cur);
            }
            q.sort_unstable();
            q.dedup();
            quorums.push(q.into_iter().map(|x| NodeId::new(x as u32)).collect());
        }
        QuorumSystem { quorums }
    }
}

fn is_prime(x: usize) -> bool {
    if x < 2 {
        return false;
    }
    (2..=x.isqrt()).all(|d| !x.is_multiple_of(d))
}

/// Normalized homogeneous coordinates of the projective plane PG(2, q):
/// `(1, y, z)`, `(0, 1, z)`, `(0, 0, 1)` — exactly `q² + q + 1` of them.
fn enumerate_projective(q: usize) -> Vec<[usize; 3]> {
    let mut pts = Vec::with_capacity(q * q + q + 1);
    for y in 0..q {
        for z in 0..q {
            pts.push([1, y, z]);
        }
    }
    for z in 0..q {
        pts.push([0, 1, z]);
    }
    pts.push([0, 0, 1]);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_quorum_contains_self() {
        for n in 1..=60 {
            let qs = QuorumSystem::grid(n);
            for node in NodeId::all(n) {
                assert!(qs.quorum(node).contains(&node), "N={n}, node={node}");
            }
        }
    }

    #[test]
    fn pairwise_intersection_holds_up_to_200() {
        for n in 1..=200 {
            let qs = QuorumSystem::grid(n);
            assert!(
                qs.quorums_intersect(),
                "grid quorums fail to intersect at N={n}"
            );
        }
    }

    #[test]
    fn quorum_size_scales_as_2_sqrt_n() {
        for n in [16, 25, 49, 100] {
            let qs = QuorumSystem::grid(n);
            let k = (n as f64).sqrt();
            let expect = 2.0 * k - 1.0;
            let mean = qs.mean_size();
            assert!(
                (mean - expect).abs() < 1.0,
                "N={n}: mean quorum size {mean}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn perfect_square_exact_sizes() {
        let qs = QuorumSystem::grid(9);
        for node in NodeId::all(9) {
            assert_eq!(qs.quorum(node).len(), 5, "3+3-1 for a 3x3 grid");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(
            QuorumSystem::grid(1).quorum(NodeId::new(0)),
            &[NodeId::new(0)]
        );
        let q2 = QuorumSystem::grid(2);
        assert!(q2.quorums_intersect());
    }

    #[test]
    fn projective_plane_exists_for_prime_orders() {
        // q = 2, 3, 5, 7 → N = 7, 13, 31, 57.
        for (q, n) in [(2usize, 7usize), (3, 13), (5, 31), (7, 57)] {
            let qs =
                QuorumSystem::projective_plane(n).unwrap_or_else(|| panic!("no FPP for N={n}"));
            assert_eq!(qs.n(), n);
            for node in NodeId::all(n) {
                assert_eq!(qs.quorum(node).len(), q + 1, "line size at N={n}");
                assert!(qs.quorum(node).contains(&node), "self-membership at N={n}");
            }
            assert!(qs.quorums_intersect(), "N={n}");
            assert!(qs.self_membership());
            // Distinct nodes must hold distinct lines (else two quorums
            // could coincide and starve the tie-break).
            for a in NodeId::all(n) {
                for b in NodeId::all(n).filter(|&b| b > a) {
                    assert_ne!(qs.quorum(a), qs.quorum(b), "shared line at N={n}");
                }
            }
        }
    }

    #[test]
    fn tree_quorums_intersect_and_scale_logarithmically() {
        for n in [1usize, 2, 3, 7, 15, 31, 40, 63, 100] {
            let qs = QuorumSystem::tree(n);
            assert!(qs.quorums_intersect(), "N={n}");
            assert!(qs.self_membership(), "N={n}");
            // Path up + path down ≤ 2·depth + 1.
            let depth = (n as f64).log2().ceil() as usize + 1;
            for node in NodeId::all(n) {
                assert!(
                    qs.quorum(node).len() <= 2 * depth + 1,
                    "N={n} node={node}: quorum {:?} too large",
                    qs.quorum(node)
                );
            }
        }
    }

    #[test]
    fn tree_quorums_all_contain_the_root() {
        // The §2 critique made concrete: the root is a universal member.
        let qs = QuorumSystem::tree(31);
        for node in NodeId::all(31) {
            assert!(qs.quorum(node).contains(&NodeId::new(0)));
        }
    }

    #[test]
    fn tree_quorum_protocol_run_is_clean() {
        use crate::maekawa::Maekawa;
        use rcv_simnet::{BurstOnce, Engine, SimConfig};
        let r = Engine::new(SimConfig::paper(15, 3), BurstOnce, |id, _n| {
            Maekawa::with_quorums(id, QuorumSystem::tree(15))
        })
        .run();
        assert!(r.is_safe());
        assert_eq!(r.metrics.completed(), 15);
    }

    #[test]
    fn projective_plane_rejects_other_sizes() {
        for n in [6, 8, 12, 20, 30, 50] {
            assert!(QuorumSystem::projective_plane(n).is_none(), "N={n}");
        }
        // q = 4 (non-prime): N = 21 must be rejected by the prime check.
        assert!(QuorumSystem::projective_plane(21).is_none());
    }

    #[test]
    fn fpp_quorums_are_half_the_grid_size() {
        let fpp = QuorumSystem::projective_plane(31).unwrap();
        let grid = QuorumSystem::grid(31);
        assert!(fpp.mean_size() < 0.65 * grid.mean_size());
    }

    #[test]
    fn best_picks_fpp_when_available() {
        assert_eq!(QuorumSystem::best(13).quorum(NodeId::new(0)).len(), 4);
        // 30 has no plane: falls back to grid.
        assert!(QuorumSystem::best(30).quorums_intersect());
    }

    #[test]
    fn quorums_are_sorted_and_unique() {
        for n in [7, 12, 30] {
            let qs = QuorumSystem::grid(n);
            for node in NodeId::all(n) {
                let q = qs.quorum(node);
                let mut sorted = q.to_vec();
                sorted.sort();
                sorted.dedup();
                assert_eq!(q, &sorted[..], "N={n} node={node}");
            }
        }
    }
}
