//! Maekawa's quorum-based mutual exclusion (see [`Maekawa`] for the protocol
//! and [`QuorumSystem`] for the quorum constructions).

mod node;
mod quorum;

pub use node::{Maekawa, MkMessage};
pub use quorum::QuorumSystem;
