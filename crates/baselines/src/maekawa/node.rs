//! Maekawa's √N quorum algorithm (TOCS 1985) with the full
//! FAILED/INQUIRE/YIELD deadlock-avoidance protocol.
//!
//! Every node plays two roles:
//!
//! * **requester** — collects a `LOCKED` grant from every member of its
//!   quorum before entering the CS;
//! * **arbiter** — grants its single lock to one request at a time,
//!   queueing the rest by `(timestamp, node)` priority. When a request
//!   with higher priority than the current grant arrives, the arbiter
//!   `INQUIRE`s the grant holder, who `YIELD`s the lock back if it knows it
//!   cannot currently win (it has received a `FAILED` somewhere).
//!
//! A node is a member of its own quorum (required for the pairwise
//! intersection property). Self-addressed protocol steps are applied
//! locally without generating network messages, matching the message
//! counts reported in the literature (≈ 3√N per CS at light load,
//! up to 5√N under contention).
//!
//! **FIFO caveat** (paper §2, citing Chang's note \[5\]): Maekawa's algorithm
//! assumes FIFO channels; the paper's simulation uses constant delays,
//! which are FIFO. We do the same in every Maekawa experiment and test.

use rcv_simnet::{Ctx, MutexProtocol, NodeId, ProtocolMessage};

use crate::common::{LamportClock, Priority};
use crate::maekawa::quorum::QuorumSystem;

/// Maekawa protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MkMessage {
    /// Timestamped lock request (requester → arbiter).
    Request {
        /// Lamport timestamp of the request.
        ts: u64,
    },
    /// Lock granted (arbiter → requester).
    Locked,
    /// Lock denied for now: a stronger request holds it (arbiter →
    /// requester).
    Failed,
    /// A stronger request is waiting — give the lock back if you are not
    /// already committed (arbiter → current grant holder).
    Inquire,
    /// The holder relinquishes the lock (requester → arbiter).
    Yield,
    /// CS finished — free the lock (requester → arbiter).
    Release,
}

impl ProtocolMessage for MkMessage {
    fn kind(&self) -> &'static str {
        match self {
            MkMessage::Request { .. } => "REQUEST",
            MkMessage::Locked => "LOCKED",
            MkMessage::Failed => "FAILED",
            MkMessage::Inquire => "INQUIRE",
            MkMessage::Yield => "YIELD",
            MkMessage::Release => "RELEASE",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            MkMessage::Request { .. } => 12,
            _ => 4,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Waiting,
    InCs,
}

/// One Maekawa node (requester + arbiter).
pub struct Maekawa {
    me: NodeId,
    quorums: QuorumSystem,
    clock: LamportClock,

    // Requester state.
    phase: Phase,
    my_priority: Option<Priority>,
    /// Quorum members that currently grant me their lock.
    locks: Vec<NodeId>,
    /// Set once any arbiter FAILs me for this request.
    got_failed: bool,
    /// Arbiters whose INQUIRE awaits an answer (flushed on first FAILED).
    pending_inquires: Vec<NodeId>,

    // Arbiter state.
    granted_to: Option<Priority>,
    wait_queue: Vec<QueuedReq>,
    inquire_sent: bool,
}

/// A request waiting at the arbiter, remembering whether its owner has
/// been told FAILED. A request admitted on the INQUIRE path is *not*
/// failed yet; if the grant later goes to an even stronger request, the
/// arbiter owes it a FAILED — otherwise it would hold locks elsewhere
/// forever without knowing it lost (a deadlock this implementation hit in
/// testing; see `regression_poisson_deadlock` below).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct QueuedReq {
    prio: Priority,
    failed_sent: bool,
}

impl Maekawa {
    /// Creates node `me` of an `n`-node system with grid quorums.
    pub fn new(me: NodeId, n: usize) -> Self {
        Self::with_quorums(me, QuorumSystem::grid(n))
    }

    /// Creates a node with an explicit quorum system (tests, ablations).
    pub fn with_quorums(me: NodeId, quorums: QuorumSystem) -> Self {
        assert!(me.index() < quorums.n());
        Maekawa {
            me,
            quorums,
            clock: LamportClock::new(),
            phase: Phase::Idle,
            my_priority: None,
            locks: Vec::new(),
            got_failed: false,
            pending_inquires: Vec::new(),
            granted_to: None,
            wait_queue: Vec::new(),
            inquire_sent: false,
        }
    }

    /// This node's quorum (white-box tests).
    pub fn quorum(&self) -> &[NodeId] {
        self.quorums.quorum(self.me)
    }

    /// One-line diagnostic snapshot of both roles (deadlock forensics).
    pub fn debug_state(&self) -> String {
        format!(
            "{:?} phase={:?} prio={:?} locks={:?} failed={} pend_inq={:?} | granted={:?} queue={:?} inq_sent={}",
            self.me,
            self.phase,
            self.my_priority,
            self.locks,
            self.got_failed,
            self.pending_inquires,
            self.granted_to,
            self.wait_queue,
            self.inquire_sent
        )
    }

    /// Routes a protocol step, short-circuiting self-addressed ones.
    fn route(&mut self, to: NodeId, msg: MkMessage, ctx: &mut Ctx<'_, MkMessage>) {
        if to == self.me {
            self.handle(self.me, msg, ctx);
        } else {
            ctx.send(to, msg);
        }
    }

    fn handle(&mut self, from: NodeId, msg: MkMessage, ctx: &mut Ctx<'_, MkMessage>) {
        match msg {
            MkMessage::Request { ts } => self.arbiter_request(Priority::new(ts, from), ctx),
            MkMessage::Yield => self.arbiter_yield(from, ctx),
            MkMessage::Release => self.arbiter_release(from, ctx),
            MkMessage::Locked => self.requester_locked(from, ctx),
            MkMessage::Failed => self.requester_failed(from, ctx),
            MkMessage::Inquire => self.requester_inquire(from, ctx),
        }
    }

    // ------------------------------------------------------- arbiter side

    fn arbiter_request(&mut self, req: Priority, ctx: &mut Ctx<'_, MkMessage>) {
        match self.granted_to {
            None => {
                self.granted_to = Some(req);
                self.route(req.node, MkMessage::Locked, ctx);
            }
            Some(cur) => {
                let stronger = req < cur;
                if stronger && !self.inquire_sent {
                    self.wait_queue.push(QueuedReq {
                        prio: req,
                        failed_sent: false,
                    });
                    self.inquire_sent = true;
                    self.route(cur.node, MkMessage::Inquire, ctx);
                } else {
                    self.wait_queue.push(QueuedReq {
                        prio: req,
                        failed_sent: true,
                    });
                    self.route(req.node, MkMessage::Failed, ctx);
                }
            }
        }
    }

    fn arbiter_yield(&mut self, from: NodeId, ctx: &mut Ctx<'_, MkMessage>) {
        let Some(cur) = self.granted_to else { return };
        if cur.node != from {
            return; // stale yield (already released and re-granted)
        }
        // The lock returns to the pool; the holder goes back in the queue.
        // It yielded because it knows it lost, so no FAILED is owed.
        self.wait_queue.push(QueuedReq {
            prio: cur,
            failed_sent: true,
        });
        self.granted_to = None;
        self.inquire_sent = false;
        self.grant_next(ctx);
    }

    fn arbiter_release(&mut self, from: NodeId, ctx: &mut Ctx<'_, MkMessage>) {
        debug_assert_eq!(
            self.granted_to.map(|p| p.node),
            Some(from),
            "RELEASE from a node that does not hold the lock"
        );
        if self.granted_to.map(|p| p.node) == Some(from) {
            self.granted_to = None;
            self.inquire_sent = false;
            self.grant_next(ctx);
        }
    }

    fn grant_next(&mut self, ctx: &mut Ctx<'_, MkMessage>) {
        debug_assert!(self.granted_to.is_none());
        if self.wait_queue.is_empty() {
            return;
        }
        let best = self
            .wait_queue
            .iter()
            .map(|q| q.prio)
            .min()
            .expect("non-empty");
        self.wait_queue.retain(|q| q.prio != best);
        self.granted_to = Some(best);
        self.route(best.node, MkMessage::Locked, ctx);
        // Everyone still queued is now weaker than the grant holder; anyone
        // admitted on the INQUIRE path has never been told FAILED — without
        // this, such a request never learns it lost and never YIELDs the
        // locks it holds at other arbiters (deadlock).
        let owed: Vec<NodeId> = self
            .wait_queue
            .iter_mut()
            .filter(|q| !q.failed_sent)
            .map(|q| {
                q.failed_sent = true;
                q.prio.node
            })
            .collect();
        for node in owed {
            self.route(node, MkMessage::Failed, ctx);
        }
    }

    // ----------------------------------------------------- requester side

    fn requester_locked(&mut self, from: NodeId, ctx: &mut Ctx<'_, MkMessage>) {
        if self.phase != Phase::Waiting {
            return; // stale (e.g. lock re-granted after our yield raced a release)
        }
        if !self.locks.contains(&from) {
            self.locks.push(from);
        }
        if self.locks.len() == self.quorums.quorum(self.me).len() {
            self.phase = Phase::InCs;
            self.got_failed = false;
            self.pending_inquires.clear();
            ctx.enter_cs();
        }
    }

    fn requester_failed(&mut self, _from: NodeId, ctx: &mut Ctx<'_, MkMessage>) {
        if self.phase != Phase::Waiting {
            return;
        }
        self.got_failed = true;
        // Answer every deferred INQUIRE: we now know we cannot win yet.
        for arbiter in core::mem::take(&mut self.pending_inquires) {
            self.locks.retain(|&l| l != arbiter);
            self.route(arbiter, MkMessage::Yield, ctx);
        }
    }

    fn requester_inquire(&mut self, from: NodeId, ctx: &mut Ctx<'_, MkMessage>) {
        match self.phase {
            // Already inside: the RELEASE at exit will answer the arbiter.
            Phase::InCs => {}
            Phase::Waiting => {
                if self.got_failed {
                    self.locks.retain(|&l| l != from);
                    self.route(from, MkMessage::Yield, ctx);
                } else if !self.pending_inquires.contains(&from) {
                    // Might still win; answer when the first FAILED arrives.
                    self.pending_inquires.push(from);
                }
            }
            // Already released: the RELEASE is on its way to the arbiter.
            Phase::Idle => {}
        }
    }
}

impl MutexProtocol for Maekawa {
    type Message = MkMessage;

    fn name(&self) -> &'static str {
        "maekawa"
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, MkMessage>) {
        debug_assert_eq!(self.phase, Phase::Idle);
        let ts = self.clock.tick();
        self.my_priority = Some(Priority::new(ts, self.me));
        self.phase = Phase::Waiting;
        self.locks.clear();
        self.got_failed = false;
        for member in self.quorums.quorum(self.me).to_vec() {
            self.route(member, MkMessage::Request { ts }, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: MkMessage, ctx: &mut Ctx<'_, MkMessage>) {
        if let MkMessage::Request { ts } = msg {
            self.clock.observe(ts);
        }
        self.handle(from, msg, ctx);
    }

    fn on_cs_released(&mut self, ctx: &mut Ctx<'_, MkMessage>) {
        debug_assert_eq!(self.phase, Phase::InCs);
        self.phase = Phase::Idle;
        self.my_priority = None;
        self.locks.clear();
        for member in self.quorums.quorum(self.me).to_vec() {
            self.route(member, MkMessage::Release, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcv_simnet::{BurstOnce, DelayModel, Engine, SimConfig};

    fn run_burst(n: usize, seed: u64) -> rcv_simnet::SimReport {
        // Constant delay: Maekawa assumes FIFO channels (see module docs).
        let cfg = SimConfig {
            delay: DelayModel::paper_constant(),
            ..SimConfig::paper(n, seed)
        };
        Engine::new(cfg, BurstOnce, Maekawa::new).run()
    }

    #[test]
    fn burst_is_safe_and_live_across_sizes() {
        for n in [1, 2, 3, 4, 5, 9, 16, 25, 30] {
            for seed in 0..4 {
                let r = run_burst(n, seed);
                assert!(r.is_safe(), "N={n} seed={seed}");
                assert!(!r.deadlocked, "N={n} seed={seed}: deadlock");
                assert_eq!(r.metrics.completed(), n, "N={n} seed={seed}: starvation");
            }
        }
    }

    #[test]
    fn light_load_messages_scale_with_quorum() {
        use rcv_simnet::{FixedTrace, SimTime};
        // One lone request: 3 * (|quorum| - 1) messages (self short-circuits).
        for n in [9, 16, 25] {
            let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(0))]);
            let cfg = SimConfig::paper(n, 0);
            let r = Engine::new(cfg, trace, Maekawa::new).run();
            let q = QuorumSystem::grid(n).quorum(NodeId::new(0)).len();
            assert_eq!(r.metrics.messages_sent() as usize, 3 * (q - 1), "N={n}");
        }
    }

    #[test]
    fn contention_pair_resolves_by_priority() {
        use rcv_simnet::{FixedTrace, SimTime};
        // Two simultaneous requests with intersecting quorums: the smaller
        // node id (equal timestamps) must win; both eventually complete.
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(0)),
            (SimTime::from_ticks(0), NodeId::new(3)),
        ]);
        let cfg = SimConfig::paper(9, 1);
        let (r, _) = Engine::new(cfg, trace, Maekawa::new).run_collecting();
        assert!(r.is_safe());
        assert_eq!(r.metrics.completed(), 2);
        let first = r
            .metrics
            .records()
            .iter()
            .min_by_key(|rec| rec.entered.unwrap())
            .unwrap();
        assert_eq!(
            first.node,
            NodeId::new(0),
            "priority tie must break by node id"
        );
    }

    #[test]
    fn inquire_yield_path_fires_under_cross_contention() {
        use rcv_simnet::{FixedTrace, SimTime};
        // Node 8 requests at t=0 with priority (1,8); node 6 requests at
        // t=2 with the *stronger* priority (1,6) before hearing anything.
        // Arbiter 7 (in both quorums) grants 8 first, then must INQUIRE 8
        // on 6's behalf; 8, FAILED elsewhere (arbiter 6 is locked by 6),
        // YIELDs — a full remote INQUIRE/YIELD round trip.
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(8)),
            (SimTime::from_ticks(2), NodeId::new(6)),
        ]);
        let cfg = SimConfig {
            delay: DelayModel::paper_constant(),
            ..SimConfig::paper(9, 5)
        };
        let r = Engine::new(cfg, trace, Maekawa::new).run();
        assert!(r.is_safe());
        assert_eq!(r.metrics.completed(), 2);
        let by_class = r.metrics.messages_by_class();
        assert!(
            by_class.get("INQUIRE").copied().unwrap_or(0) > 0,
            "no INQUIRE sent: {by_class:?}"
        );
        assert!(
            by_class.get("YIELD").copied().unwrap_or(0) > 0,
            "no YIELD sent: {by_class:?}"
        );
        assert!(
            by_class.get("FAILED").copied().unwrap_or(0) > 0,
            "no FAILED sent: {by_class:?}"
        );
        // The stronger request must be served first.
        let first = r
            .metrics
            .records()
            .iter()
            .min_by_key(|rec| rec.entered.unwrap())
            .unwrap();
        assert_eq!(first.node, NodeId::new(6));
    }

    #[test]
    fn regression_poisson_deadlock() {
        // Found by the FIG6 sweep: N=30, closed-loop Poisson 1/λ=10, seed 1
        // wedged with node 13 holding 7 locks, INQUIREd but never FAILED,
        // while node 0 (stronger) waited on it. The grant_next FAILED
        // back-notification fixes it; this pins the exact scenario.
        struct Poissonish {
            horizon: rcv_simnet::SimTime,
        }
        impl rcv_simnet::Workload for Poissonish {
            fn init(
                &mut self,
                n: usize,
                rng: &mut rand::rngs::SmallRng,
                sink: &mut rcv_simnet::ArrivalSink,
            ) {
                use rand::Rng;
                for node in NodeId::all(n) {
                    let gap = 1 + (rng.gen::<f64>() * 20.0) as u64;
                    sink.schedule(SimTime::from_ticks(gap), node);
                }
            }
            fn on_complete(
                &mut self,
                node: NodeId,
                now: rcv_simnet::SimTime,
                rng: &mut rand::rngs::SmallRng,
                sink: &mut rcv_simnet::ArrivalSink,
            ) {
                use rand::Rng;
                let at =
                    now + rcv_simnet::SimDuration::from_ticks(1 + (rng.gen::<f64>() * 20.0) as u64);
                if at < self.horizon {
                    sink.schedule(at, node);
                }
            }
        }
        use rcv_simnet::SimTime;
        for seed in 0..6 {
            let cfg = SimConfig::paper(30, seed);
            let r = Engine::new(
                cfg,
                Poissonish {
                    horizon: SimTime::from_ticks(20_000),
                },
                Maekawa::new,
            )
            .run();
            assert!(r.is_safe(), "seed={seed}");
            assert!(
                !r.deadlocked,
                "seed={seed}: Maekawa wedged (INQUIRE-path FAILED bug)"
            );
            assert!(
                r.metrics.completed() > 100,
                "seed={seed}: implausibly few completions"
            );
        }
    }

    #[test]
    fn repeated_rounds_do_not_deadlock() {
        struct Rounds(Vec<u32>);
        impl rcv_simnet::Workload for Rounds {
            fn init(
                &mut self,
                n: usize,
                _rng: &mut rand::rngs::SmallRng,
                sink: &mut rcv_simnet::ArrivalSink,
            ) {
                for node in NodeId::all(n) {
                    sink.schedule(rcv_simnet::SimTime::ZERO, node);
                }
            }
            fn on_complete(
                &mut self,
                node: NodeId,
                now: rcv_simnet::SimTime,
                _rng: &mut rand::rngs::SmallRng,
                sink: &mut rcv_simnet::ArrivalSink,
            ) {
                if self.0[node.index()] > 0 {
                    self.0[node.index()] -= 1;
                    sink.schedule(now + rcv_simnet::SimDuration::from_ticks(1), node);
                }
            }
        }
        for seed in 0..4 {
            let n = 12;
            let cfg = SimConfig {
                delay: DelayModel::paper_constant(),
                ..SimConfig::paper(n, seed)
            };
            let r = Engine::new(cfg, Rounds(vec![3; n]), Maekawa::new).run();
            assert!(r.is_safe(), "seed={seed}");
            assert!(!r.deadlocked, "seed={seed}");
            assert_eq!(r.metrics.completed(), n * 4, "seed={seed}");
        }
    }
}
