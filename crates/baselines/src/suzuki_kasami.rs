//! Suzuki–Kasami broadcast token algorithm (TOCS 1985) — the paper's
//! "Broadcast" comparator.
//!
//! A single token circulates; a node that wants the CS and lacks the token
//! broadcasts a sequence-numbered request to everyone. The token carries,
//! per node, the sequence number of that node's last *served* request
//! (`LN`), plus a FIFO queue of requesters. `N` messages per CS when the
//! token must move (`N−1` requests + 1 token), zero when the holder
//! re-enters.

use std::collections::VecDeque;

use rcv_simnet::{Ctx, MutexProtocol, NodeId, ProtocolMessage};

/// The circulating token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// `LN[j]`: sequence number of node j's most recently served request.
    pub last_served: Vec<u64>,
    /// Nodes waiting for the token, in service order.
    pub queue: VecDeque<NodeId>,
}

impl Token {
    fn new(n: usize) -> Self {
        Token {
            last_served: vec![0; n],
            queue: VecDeque::new(),
        }
    }
}

/// Suzuki–Kasami message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SkMessage {
    /// Broadcast CS request: `(requesting node implied by sender, seq)`.
    Request {
        /// The requester's sequence number for this request.
        seq: u64,
    },
    /// The token in flight.
    Token(Box<Token>),
}

impl ProtocolMessage for SkMessage {
    fn kind(&self) -> &'static str {
        match self {
            SkMessage::Request { .. } => "REQUEST",
            SkMessage::Token(_) => "TOKEN",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            SkMessage::Request { .. } => 12,
            SkMessage::Token(t) => 8 * t.last_served.len() + 4 * t.queue.len() + 8,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Waiting,
    InCs,
}

/// One Suzuki–Kasami node.
pub struct SuzukiKasami {
    me: NodeId,
    n: usize,
    /// `RN[j]`: highest request sequence number heard from node j.
    request_numbers: Vec<u64>,
    token: Option<Token>,
    phase: Phase,
}

impl SuzukiKasami {
    /// Creates node `me` of an `n`-node system; node 0 holds the token
    /// initially.
    pub fn new(me: NodeId, n: usize) -> Self {
        assert!(n >= 1 && me.index() < n);
        SuzukiKasami {
            me,
            n,
            request_numbers: vec![0; n],
            token: (me == NodeId::new(0)).then(|| Token::new(n)),
            phase: Phase::Idle,
        }
    }

    /// Whether this node currently holds the token (white-box tests).
    pub fn has_token(&self) -> bool {
        self.token.is_some()
    }

    /// If idle with the token, forward it to the next queued requester.
    fn dispatch_token(&mut self, ctx: &mut Ctx<'_, SkMessage>) {
        if self.phase == Phase::InCs {
            return;
        }
        let Some(token) = &mut self.token else { return };
        // Refresh the queue with anyone whose pending request is not yet
        // queued (outstanding = RN[j] == LN[j] + 1).
        for j in NodeId::all(self.n) {
            if j != self.me
                && self.request_numbers[j.index()] == token.last_served[j.index()] + 1
                && !token.queue.contains(&j)
            {
                token.queue.push_back(j);
            }
        }
        if let Some(next) = token.queue.pop_front() {
            let token = self.token.take().expect("checked above");
            ctx.send(next, SkMessage::Token(Box::new(token)));
        }
    }
}

impl MutexProtocol for SuzukiKasami {
    type Message = SkMessage;

    fn name(&self) -> &'static str {
        "suzuki-kasami"
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, SkMessage>) {
        debug_assert_eq!(self.phase, Phase::Idle);
        self.request_numbers[self.me.index()] += 1;
        if self.token.is_some() {
            // Token already here: enter without any message.
            self.phase = Phase::InCs;
            ctx.enter_cs();
            return;
        }
        self.phase = Phase::Waiting;
        let seq = self.request_numbers[self.me.index()];
        for peer in NodeId::all(self.n).filter(|&p| p != self.me) {
            ctx.send(peer, SkMessage::Request { seq });
        }
    }

    fn on_message(&mut self, from: NodeId, msg: SkMessage, ctx: &mut Ctx<'_, SkMessage>) {
        match msg {
            SkMessage::Request { seq } => {
                let rn = &mut self.request_numbers[from.index()];
                *rn = (*rn).max(seq);
                // Outdated duplicate requests (seq <= LN[from]) are ignored
                // by the dispatch condition.
                self.dispatch_token(ctx);
            }
            SkMessage::Token(token) => {
                debug_assert_eq!(self.phase, Phase::Waiting, "unsolicited token");
                self.token = Some(*token);
                self.phase = Phase::InCs;
                ctx.enter_cs();
            }
        }
    }

    fn on_cs_released(&mut self, ctx: &mut Ctx<'_, SkMessage>) {
        debug_assert_eq!(self.phase, Phase::InCs);
        self.phase = Phase::Idle;
        let me = self.me.index();
        let token = self.token.as_mut().expect("holder must have the token");
        token.last_served[me] = self.request_numbers[me];
        self.dispatch_token(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcv_simnet::{BurstOnce, DelayModel, Engine, FixedTrace, SimConfig, SimTime};

    fn run_burst(n: usize, seed: u64, delay: DelayModel) -> rcv_simnet::SimReport {
        let cfg = SimConfig {
            delay,
            ..SimConfig::paper(n, seed)
        };
        Engine::new(cfg, BurstOnce, SuzukiKasami::new).run()
    }

    #[test]
    fn burst_is_safe_and_live() {
        for n in [1, 2, 5, 10, 25] {
            let r = run_burst(n, 0, DelayModel::paper_constant());
            assert!(r.is_safe(), "N={n}");
            assert_eq!(r.metrics.completed(), n, "N={n}");
        }
    }

    #[test]
    fn token_holder_enters_for_free() {
        let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(0))]);
        let cfg = SimConfig::paper(8, 0);
        let r = Engine::new(cfg, trace, SuzukiKasami::new).run();
        assert_eq!(
            r.metrics.messages_sent(),
            0,
            "holder must not send anything"
        );
        assert_eq!(r.metrics.response_time().mean, 0.0);
    }

    #[test]
    fn non_holder_costs_n_messages() {
        // N-1 broadcast requests + 1 token transfer.
        for n in [4, 9, 16] {
            let trace = FixedTrace::new(vec![(SimTime::from_ticks(0), NodeId::new(1))]);
            let cfg = SimConfig::paper(n, 0);
            let r = Engine::new(cfg, trace, SuzukiKasami::new).run();
            assert_eq!(r.metrics.messages_sent() as usize, n, "N={n}");
        }
    }

    #[test]
    fn sequence_numbers_deduplicate_requests() {
        // Two consecutive requests by the same node: the token must come
        // back the second time too (no stale-queue confusion).
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(2)),
            (SimTime::from_ticks(200), NodeId::new(2)),
        ]);
        let cfg = SimConfig::paper(5, 0);
        let r = Engine::new(cfg, trace, SuzukiKasami::new).run();
        assert_eq!(r.metrics.completed(), 2);
    }

    #[test]
    fn non_fifo_jitter_is_tolerated() {
        // Suzuki-Kasami is famously FIFO-free (sequence numbers dedupe).
        for seed in 0..8 {
            let r = run_burst(12, seed, DelayModel::paper_jittered());
            assert!(r.is_safe(), "seed={seed}");
            assert_eq!(r.metrics.completed(), 12, "seed={seed}");
        }
    }

    #[test]
    fn heavy_load_keeps_token_moving() {
        let r = run_burst(10, 3, DelayModel::paper_constant());
        let by_class = r.metrics.messages_by_class();
        assert_eq!(
            by_class["TOKEN"], 9,
            "token moves to each of the 9 non-holders once"
        );
    }
}
