//! # rcv-baselines — comparator algorithms for the RCV evaluation
//!
//! The paper's simulation (§6.2) compares RCV against three classic
//! non-structured algorithms; this crate implements all three, plus two
//! extensions for the paper's proposed future-work comparison:
//!
//! | Module | Algorithm | Messages/CS | Notes |
//! |---|---|---|---|
//! | [`ricart_agrawala`] | Ricart–Agrawala 1981 ("Ricart") | `2(N−1)` | permission-based |
//! | [`maekawa`] | Maekawa 1985 | `3√N..5√N` | grid quorums + FAILED/INQUIRE/YIELD |
//! | [`suzuki_kasami`] | Suzuki–Kasami 1985 ("Broadcast") | `0` or `N` | broadcast token |
//! | [`ra_dynamic`] | Roucairol–Carvalho dynamic RA | `0..2(N−1)` | the paper's "\[15\]" remark |
//! | [`lamport`] | Lamport 1978 | `3(N−1)` | extension |
//! | [`raymond`] | Raymond 1989 | `~4` heavy, `O(log N)` light | structured extension |
//!
//! All five implement the shared [`rcv_simnet::MutexProtocol`] interface,
//! so any of them can be dropped into the simulator, the threaded runtime
//! and the experiment harness interchangeably with the RCV implementation
//! in `rcv-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod lamport;
pub mod maekawa;
pub mod ra_dynamic;
pub mod raymond;
pub mod ricart_agrawala;
pub mod suzuki_kasami;

pub use lamport::{Lamport, LpMessage};
pub use maekawa::{Maekawa, MkMessage, QuorumSystem};
pub use ra_dynamic::{RaDynamic, RdMessage};
pub use raymond::{Raymond, RyMessage};
pub use ricart_agrawala::{RaMessage, RicartAgrawala};
pub use suzuki_kasami::{SkMessage, SuzukiKasami, Token};
