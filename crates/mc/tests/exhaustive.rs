//! Exhaustive safety/liveness verification at small N — the successor of
//! the hand-rolled explorer that used to live in
//! `crates/core/tests/model_check.rs`, now covering fault branching
//! (bounded loss + duplication), both search strategies and the
//! Ricart–Agrawala and Lamport baselines alongside RCV.

use rcv_core::ForwardPolicy;
use rcv_mc::{lamport_checker, rcv_checker, rcv_recovery_checker, ricart_checker, Action, McEvent};
use rcv_simnet::{NodeId, RetryPolicy};

/// Deterministic policies only: the checker's dispatch must be a pure
/// function of the state.
const POLICIES: [ForwardPolicy; 3] = [
    ForwardPolicy::Sequential,
    ForwardPolicy::MostStale,
    ForwardPolicy::Freshest,
];

fn ids(raw: &[u32]) -> Vec<NodeId> {
    raw.iter().map(|&r| NodeId::new(r)).collect()
}

#[test]
fn rcv_n2_both_request_all_policies() {
    for policy in POLICIES {
        let r = rcv_checker(2, policy).run_dfs();
        r.expect_clean_exhaustive();
        assert!(r.terminals > 0, "no terminal state reached");
        println!("rcv n2 {policy:?}: {}", r.summary());
    }
}

#[test]
fn rcv_n3_two_requesters_all_policies() {
    for policy in POLICIES {
        let r = rcv_checker(3, policy).requesters(ids(&[0, 2])).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n3 two {policy:?}: {}", r.summary());
    }
}

#[test]
fn rcv_n3_full_burst_all_policies() {
    for policy in POLICIES {
        let r = rcv_checker(3, policy).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n3 burst {policy:?}: {}", r.summary());
    }
}

#[test]
fn rcv_n4_two_requesters_sequential() {
    let r = rcv_checker(4, ForwardPolicy::Sequential)
        .requesters(ids(&[1, 3]))
        .run_dfs();
    r.expect_clean_exhaustive();
    println!("rcv n4 two: {}", r.summary());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "large state space; run under --release")]
fn rcv_n4_full_burst_all_policies() {
    for policy in POLICIES {
        let r = rcv_checker(4, policy).max_states(50_000_000).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n4 burst {policy:?}: {}", r.summary());
    }
}

#[test]
fn rcv_n5_two_requesters_sequential() {
    let r = rcv_checker(5, ForwardPolicy::Sequential)
        .requesters(ids(&[0, 4]))
        .run_dfs();
    r.expect_clean_exhaustive();
    println!("rcv n5 two: {}", r.summary());
}

/// The headline configuration from the issue: N=3 full burst with loss
/// AND duplication branching enabled, exhausted to the end.
#[test]
#[cfg_attr(debug_assertions, ignore = "large state space; run under --release")]
fn rcv_n3_burst_with_loss_and_duplication() {
    for policy in POLICIES {
        let r = rcv_checker(3, policy).drops(1).dups(1).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n3 faults {policy:?}: {}", r.summary());
    }
}

#[test]
fn rcv_n2_with_loss_and_duplication() {
    for policy in POLICIES {
        let r = rcv_checker(2, policy).drops(1).dups(1).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n2 faults {policy:?}: {}", r.summary());
    }
}

/// Duplication alone must never stall RCV (the goal predicate enforces
/// completion on paths where no message was lost).
#[test]
fn rcv_n3_duplication_only_still_live() {
    let r = rcv_checker(3, ForwardPolicy::Sequential).dups(2).run_dfs();
    r.expect_clean_exhaustive();
    println!("rcv n3 dup2: {}", r.summary());
}

/// Multi-round: each requester cycles through the CS twice, covering
/// re-request paths over non-fresh SI state.
#[test]
fn rcv_n2_two_rounds() {
    for policy in POLICIES {
        let r = rcv_checker(2, policy).rounds(2).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n2 rounds=2 {policy:?}: {}", r.summary());
    }
}

/// Crash-recovery at N=2: one crash-restart branched at every state
/// (either node, any instant), retransmission armed — exhausted with
/// zero violations. Small enough to run in debug builds.
#[test]
fn rcv_n2_one_crash_restart_exhausts_clean() {
    for policy in POLICIES {
        let r =
            rcv_recovery_checker(2, policy, Some(RetryPolicy::fixed(10).with_budget(1))).run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n2 crash {policy:?}: {}", r.summary());
    }
}

/// The issue's headline configuration: RCV N=3 full burst with **one
/// crash-restart** branched at every state over every node — the victim
/// may be the CS holder, a waiter or a bystander, at any instant — with
/// write-ahead recovery resuming interrupted requests. Exhausted: zero
/// mutual exclusion violations, zero Lemma 6 violations, NONL prefix
/// consistency in every reachable state — 444,626 states, 594 terminals,
/// exhausted per policy.
///
/// No retransmission in this configuration: each armed retry timer is an
/// always-deliverable pending event whose interleavings (every fire
/// point launches a full re-campaign walk, crash-branched again) push
/// the N=3 space past tractability. The retry-armed recovery space is
/// exhausted at N=2 above; retry-armed liveness at N≥3 is covered
/// empirically by the matrix chaos cells on both backends.
#[test]
#[cfg_attr(debug_assertions, ignore = "large state space; run under --release")]
fn rcv_n3_burst_one_crash_restart_exhausts_clean() {
    for policy in POLICIES {
        let r = rcv_recovery_checker(3, policy, None)
            .max_states(50_000_000)
            .run_dfs();
        r.expect_clean_exhaustive();
        println!("rcv n3 crash {policy:?}: {}", r.summary());
    }
}

/// A crash budget multiplies the explored space (crash branches exist at
/// every state) and must add terminals, not replace them: the fault-free
/// completions are still all there.
#[test]
fn crash_branching_extends_the_fault_free_space() {
    let base = rcv_checker(2, ForwardPolicy::Sequential).run_dfs();
    let crashy = rcv_recovery_checker(2, ForwardPolicy::Sequential, None).run_dfs();
    base.expect_clean_exhaustive();
    crashy.expect_clean_exhaustive();
    assert!(crashy.visited > base.visited);
    assert!(crashy.terminals >= base.terminals);
}

/// DFS and BFS must agree on the size of the reachable state space.
#[test]
fn dfs_and_bfs_agree_on_state_counts() {
    let dfs = rcv_checker(3, ForwardPolicy::Sequential).run_dfs();
    let bfs = rcv_checker(3, ForwardPolicy::Sequential).run_bfs();
    dfs.expect_clean_exhaustive();
    bfs.expect_clean_exhaustive();
    assert_eq!(dfs.visited, bfs.visited);
    assert_eq!(dfs.transitions, bfs.transitions);
    assert_eq!(dfs.terminals, bfs.terminals);
}

#[test]
fn ricart_n3_burst() {
    let r = ricart_checker(3).run_dfs();
    r.expect_clean_exhaustive();
    println!("ricart n3: {}", r.summary());
}

#[test]
fn ricart_n3_with_duplication() {
    // Within one wait RA's per-sender reply bitmap dedups duplicated
    // REPLYs and REQUEST duplicates re-trigger a reply or a deferral,
    // both safe — single-round duplication is exhaustively clean. (The
    // first run of this configuration also flushed out a latent crash:
    // the REPLY handler debug-asserted `phase == Waiting`, but a
    // duplicate copy legally arrives after entry; the handler now drops
    // out-of-wait replies.)
    let r = ricart_checker(3).dups(1).run_dfs();
    r.expect_clean_exhaustive();
    println!("ricart n3 dup: {}", r.summary());
}

/// Across rounds, duplication genuinely breaks classic Ricart–Agrawala:
/// REPLYs carry no request identifier, so a duplicated grant from round
/// one straggles into the next wait and authorizes a premature entry.
/// Pinned like the Lamport non-FIFO violation — a real protocol
/// limitation the checker proves (and the reason the scenario registry
/// keeps duplication regimes away from the baselines), not a bug in the
/// implementation.
#[test]
fn ricart_multi_round_duplication_finds_premature_entry() {
    let r = ricart_checker(2).dups(1).rounds(2).run_bfs();
    println!("ricart cross-round dup violation: {}", r.summary());
    let v = r
        .violation
        .expect("cross-round duplication must break classic RA");
    assert!(
        v.description.contains("MUTUAL EXCLUSION"),
        "unexpected violation kind: {}",
        v.description
    );
    assert!(
        v.steps.len() <= 6,
        "BFS should find the 6-step minimal trace, got {}",
        v.steps.len()
    );
    assert!(
        v.trace.matches("ENTERS the critical section").count() >= 2,
        "replay must narrate both entries:\n{}",
        v.trace
    );
}

#[test]
fn ricart_n4_two_requesters_with_loss() {
    // Losing any message stalls someone (no retransmission), but that is
    // an attributable fault; safety must hold on every prefix.
    let r = ricart_checker(4)
        .requesters(ids(&[0, 2]))
        .drops(1)
        .run_dfs();
    r.expect_clean_exhaustive();
    println!("ricart n4 loss: {}", r.summary());
}

#[test]
fn lamport_n3_burst_fifo() {
    let r = lamport_checker(3).run_dfs();
    r.expect_clean_exhaustive();
    println!("lamport n3 fifo: {}", r.summary());
}

/// Lamport WITHOUT the FIFO assumption is genuinely unsafe — the
/// documented limitation, demonstrated exhaustively: an ACK from an
/// in-CS node can authorize a second entry before the first REQUEST
/// arrives. This pins the checker's ability to find and render real
/// violations (BFS ⇒ the counterexample is minimal).
#[test]
fn lamport_non_fifo_finds_mutual_exclusion_violation() {
    let r = lamport_checker(2).fifo(false).run_bfs();
    let v = r.violation.expect("non-FIFO Lamport must violate safety");
    assert!(
        v.description.contains("MUTUAL EXCLUSION"),
        "unexpected violation kind: {}",
        v.description
    );
    // The replayed narrative must carry both entries.
    assert!(
        v.trace.matches("ENTERS the critical section").count() >= 2,
        "trace should narrate both CS entries:\n{}",
        v.trace
    );
    // Every step of a minimal trace is a delivery of a reliable network:
    // no drop/duplicate actions were available, and BFS found it within
    // a handful of steps.
    assert!(v.steps.iter().all(|(_, a)| *a == Action::Deliver));
    assert!(
        v.steps.len() <= 8,
        "expected a short minimal counterexample, got {} steps",
        v.steps.len()
    );
    println!(
        "lamport non-fifo violation after {} steps:\n{}",
        v.steps.len(),
        v.trace
    );
}

/// The checker's loss branching must show up in the counterexample
/// machinery too: force a lost EM for RCV and check the stall is
/// *attributed* (no goal violation), while the un-dropped sibling paths
/// still complete.
#[test]
fn rcv_loss_paths_are_attributed_not_deadlocks() {
    let r = rcv_checker(2, ForwardPolicy::Sequential).drops(2).run_dfs();
    r.expect_clean_exhaustive();
    // Sanity: with a loss budget the terminal count strictly exceeds the
    // fault-free run's (stalled terminals join completed ones).
    let clean = rcv_checker(2, ForwardPolicy::Sequential).run_dfs();
    assert!(r.terminals > clean.terminals);
}

/// Depth bounding truncates instead of lying: a tiny bound must report
/// truncated > 0 and therefore exhausted() == false.
#[test]
fn depth_bound_reports_truncation() {
    let r = rcv_checker(3, ForwardPolicy::Sequential)
        .max_depth(3)
        .run_bfs();
    assert!(r.violation.is_none());
    assert!(r.truncated > 0);
    assert!(!r.exhausted());
}

/// State-cap abort is reported, not silent.
#[test]
fn state_cap_aborts_loudly() {
    let r = rcv_checker(3, ForwardPolicy::Sequential)
        .max_states(10)
        .run_dfs();
    assert!(r.aborted.is_some());
    assert!(!r.exhausted());
}

/// Fingerprint sanity: delivering two *identical* in-flight copies in
/// either order reaches one canonical state, so a duplication budget of
/// one exactly doubles nothing — the checker merges the permutations.
#[test]
fn duplicate_copies_are_merged_choices() {
    let r = rcv_checker(2, ForwardPolicy::Sequential).dups(1).run_dfs();
    r.expect_clean_exhaustive();
    // The merged exploration is strictly smaller than treating every
    // pending index as a distinct choice would be: transitions per state
    // stay bounded by distinct events, which this asserts indirectly by
    // terminating quickly. Nothing more to assert than cleanliness here.
    let _ = r;
}

/// The old explorer pinned these cross-checks as well: event kinds in
/// counterexample steps expose the public `McEvent` API.
#[test]
fn mc_event_api_is_usable() {
    let ev: McEvent<u32> = McEvent::CsExit {
        node: NodeId::new(1),
    };
    assert_eq!(
        ev,
        McEvent::CsExit {
            node: NodeId::new(1)
        }
    );
}
