//! System states and their canonical fingerprints.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use rcv_simnet::NodeId;

use crate::adapters::McProtocol;

/// One in-flight occurrence the checker can branch on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McEvent<M> {
    /// A message sent by `from`, not yet delivered to `to`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// The node currently executing the CS finishes.
    CsExit {
        /// The node leaving the CS.
        node: NodeId,
    },
    /// A timer armed by `node` fires.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The tag the protocol attached when arming it.
        tag: u64,
    },
    /// `node` crashes and immediately restarts (the crash window
    /// collapses to a point: everything in flight *toward* the node and
    /// its armed timers die with the process, then
    /// [`rcv_simnet::MutexProtocol::on_restart`] runs). Unlike the other
    /// variants this is never *pending* — the checker synthesizes it at
    /// every state while the crash budget lasts; it appears only in
    /// counterexample step lists.
    CrashRestart {
        /// The node that crashes and restarts.
        node: NodeId,
    },
}

impl<M> McEvent<M> {
    /// Grouping key for canonicalization: deliveries group per directed
    /// `(from, to)` channel (whose internal order carries meaning under
    /// FIFO), everything else is its own singleton group.
    pub(crate) fn group_key(&self) -> (u8, u32, u32, u64) {
        match *self {
            McEvent::Deliver { from, to, .. } => (0, from.raw(), to.raw(), 0),
            McEvent::CsExit { node } => (1, node.raw(), 0, 0),
            McEvent::Timer { node, tag } => (2, node.raw(), 0, tag),
            McEvent::CrashRestart { node } => (3, node.raw(), 0, 0),
        }
    }

    /// Whether this is a message delivery (the only event kind the fault
    /// budgets apply to — losing or duplicating a local event is
    /// meaningless).
    pub(crate) fn is_deliver(&self) -> bool {
        matches!(self, McEvent::Deliver { .. })
    }
}

/// One snapshot of the whole system: node states, in-flight events, CS
/// occupancy and the remaining fault budgets.
///
/// `pending` preserves send order within each directed channel (the tail
/// is the newest message), which is what FIFO mode's head-only delivery
/// rule keys on; in unordered mode the order is irrelevant and the
/// fingerprint sorts it away.
pub struct SystemState<P: McProtocol>
where
    P::Message: PartialEq,
{
    /// Per-node protocol state, indexed by node id.
    pub nodes: Vec<P>,
    /// In-flight events.
    pub pending: Vec<McEvent<P::Message>>,
    /// The node currently inside the CS, if any (the checker's own
    /// monitor — protocol-independent, like the engine's
    /// [`rcv_simnet::SafetyMonitor`]).
    pub occupant: Option<NodeId>,
    /// Completed CS executions per node.
    pub completed: Vec<u32>,
    /// Messages the checker may still choose to lose on this path.
    pub drops_left: u32,
    /// Messages the checker may still choose to duplicate on this path.
    pub dups_left: u32,
    /// Crash-restarts the checker may still inject on this path.
    pub crashes_left: u32,
}

impl<P: McProtocol> Clone for SystemState<P>
where
    P::Message: PartialEq,
{
    fn clone(&self) -> Self {
        SystemState {
            nodes: self.nodes.clone(),
            pending: self.pending.clone(),
            occupant: self.occupant,
            completed: self.completed.clone(),
            drops_left: self.drops_left,
            dups_left: self.dups_left,
            crashes_left: self.crashes_left,
        }
    }
}

/// Two independent 64-bit lanes (SipHash via [`DefaultHasher`], which is
/// deterministic when built with `new()`, and FNV-1a) combined into a
/// 128-bit fingerprint: at the state counts the checker reaches (≤ 10^8)
/// a collision — which would silently prune a *distinct* state — is
/// astronomically unlikely.
struct Lanes {
    sip: DefaultHasher,
    fnv: u64,
}

impl Lanes {
    fn new() -> Self {
        Lanes {
            sip: DefaultHasher::new(),
            fnv: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn finish128(&self) -> u128 {
        ((self.sip.finish() as u128) << 64) | self.fnv as u128
    }
}

impl Hasher for Lanes {
    fn finish(&self) -> u64 {
        self.sip.finish()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.sip.write(bytes);
        for &b in bytes {
            self.fnv = (self.fnv ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Canonical 128-bit fingerprint of a state.
///
/// Node states hash through [`McProtocol::state_hash`]; pending events are
/// grouped by channel and — in unordered mode — sorted within each group,
/// so permutations of in-flight messages that cannot be distinguished by
/// any delivery schedule collapse to one fingerprint. Under FIFO the
/// within-channel order *is* observable and is preserved. The remaining
/// budgets are part of the identity (used budget = initial − left, so
/// "attributable fault" is a function of the state, not the path).
pub(crate) fn fingerprint<P: McProtocol>(s: &SystemState<P>, fifo: bool) -> u128
where
    P::Message: PartialEq,
{
    let mut h = Lanes::new();
    for node in &s.nodes {
        node.state_hash(&mut h);
        0xfeu8.hash(&mut h);
    }
    let mut groups: BTreeMap<(u8, u32, u32, u64), Vec<String>> = BTreeMap::new();
    for ev in &s.pending {
        groups
            .entry(ev.group_key())
            .or_default()
            .push(format!("{ev:?}"));
    }
    for (key, mut reprs) in groups {
        if !fifo {
            reprs.sort_unstable();
        }
        key.hash(&mut h);
        for r in &reprs {
            r.hash(&mut h);
        }
    }
    match s.occupant {
        Some(n) => n.raw().hash(&mut h),
        None => u32::MAX.hash(&mut h),
    }
    s.completed.hash(&mut h);
    s.drops_left.hash(&mut h);
    s.dups_left.hash(&mut h);
    s.crashes_left.hash(&mut h);
    h.finish128()
}
