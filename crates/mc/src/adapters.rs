//! The bridge between a sans-io protocol and the model checker: state
//! identity (hashing) and per-node invariant hooks.

use std::fmt;
use std::hash::{Hash, Hasher};

use rcv_baselines::{Lamport, RicartAgrawala};
use rcv_core::RcvNode;
use rcv_simnet::MutexProtocol;

/// A protocol the model checker can explore.
///
/// Requirements beyond [`MutexProtocol`]:
///
/// * `Clone` — states are snapshotted and branched at every decision
///   point;
/// * `Debug` — pending messages are canonicalized through their debug
///   rendering;
/// * `Self::Message: PartialEq` — identical in-flight events are merged
///   (delivering either copy reaches the same successor state);
/// * handlers must be **deterministic** functions of the node state: no
///   randomness, no wall-clock dependence. The checker dispatches every
///   handler with a fixed-seed RNG and virtual time frozen at zero, so a
///   protocol that violates this explores a misleading state space.
pub trait McProtocol: MutexProtocol + Clone + fmt::Debug
where
    Self::Message: PartialEq,
{
    /// Feeds the node's protocol-relevant state into `h`. Observer-only
    /// fields (message counters, statistics) must be excluded, or
    /// equivalent states reached along different paths never merge and
    /// the state space explodes.
    fn state_hash<H: Hasher>(&self, h: &mut H);

    /// Per-node invariant, checked in every visited state. `Err` is a
    /// counterexample.
    fn check_node(&self) -> Result<(), String> {
        Ok(())
    }

    /// Per-node invariant under a **crash-recovery** regime: the checker
    /// substitutes this for [`Self::check_node`] whenever crash-restart
    /// branching is enabled. Defaults to the plain check; protocols whose
    /// anomaly accounting assumes a crash-free run override it to relax
    /// exactly the counters a legitimate crash can trip — and nothing
    /// else.
    fn check_node_recovering(&self) -> Result<(), String> {
        self.check_node()
    }
}

impl McProtocol for RcvNode {
    fn state_hash<H: Hasher>(&self, h: &mut H) {
        self.state_digest(h);
    }

    /// The paper's per-node structural lemmas plus anomaly freedom: any
    /// UL exhaustion or Lemma 6 violation the node itself detected is a
    /// counterexample, not a statistic.
    fn check_node(&self) -> Result<(), String> {
        self.si().invariants_ok(self.id())?;
        let anomalies = self.stats().anomalies();
        if anomalies > 0 {
            return Err(format!(
                "{} recorded {anomalies} anomalies (ul_exhausted={}, lemma6={})",
                self.id(),
                self.stats().ul_exhausted,
                self.stats().lemma6_violations,
            ));
        }
        Ok(())
    }

    /// Under crash-recovery, UL exhaustion stops being an anomaly: the
    /// restarted node's rebuilt NSIT row has forgotten the votes peers
    /// registered at it, so an in-flight RM can legitimately run out of
    /// unvisited nodes without ordering (Lemma 3 assumes no vote loss) —
    /// the retransmission extension re-campaigns. The structural lemmas
    /// and Lemma 6 remain hard violations in every regime.
    fn check_node_recovering(&self) -> Result<(), String> {
        self.si().invariants_ok(self.id())?;
        let lemma6 = self.stats().lemma6_violations;
        if lemma6 > 0 {
            return Err(format!(
                "{} recorded {lemma6} Lemma 6 violations",
                self.id()
            ));
        }
        Ok(())
    }
}

impl McProtocol for RicartAgrawala {
    fn state_hash<H: Hasher>(&self, h: &mut H) {
        self.hash(h);
    }
}

impl McProtocol for Lamport {
    fn state_hash<H: Hasher>(&self, h: &mut H) {
        self.hash(h);
    }
}
