//! Exhaustive model checking for the sans-io mutual exclusion protocols.
//!
//! The simulator ([`rcv_simnet::Engine`]) samples schedules; this crate
//! *enumerates* them. A system state is the tuple (all node states,
//! multiset of in-flight events, CS occupancy, fault budgets); from each
//! state the [`ModelChecker`] branches on every eligible pending event —
//! and, when the fault budgets allow, on losing or duplicating each
//! in-flight message and on crash-restarting each node (any node, any
//! instant: the victim's in-flight inbox and timers die with it, then
//! its `on_restart` recovery hook runs) — deduplicating revisited states
//! by a canonical 128-bit fingerprint. In every reachable state it
//! checks:
//!
//! * **mutual exclusion** — an `enter_cs` intent while another node holds
//!   the CS (or a double entry by the holder) is a violation;
//! * **per-node invariants** — protocol-specific hooks
//!   ([`McProtocol::check_node`]; for RCV: the paper's structural lemmas
//!   plus a zero anomaly count);
//! * **cross-node invariants** — an optional whole-system predicate (for
//!   RCV: Lemma 6/7 NONL prefix consistency);
//!
//! and in every *quiescent* state (nothing in flight) it checks the goal:
//! every requester completed all its rounds — **unless** a message was
//! actually lost or a node actually crashed on that path
//! (no-deadlock-without-attributable-fault; duplication alone must never
//! cause a stall).
//!
//! On any violation the checker rebuilds the offending path from its
//! parent-pointer arena and replays it through the [`rcv_simnet::Trace`]
//! machinery, yielding a human-readable minimal counterexample (BFS finds
//! a shortest path; DFS finds *a* path). Search order is pluggable via
//! [`Frontier`] ([`Dfs`]/[`Bfs`]).
//!
//! Determinism contract: the checker's dispatch must be a pure function
//! of the node state, so protocols must not consume randomness
//! (`ForwardPolicy::Random` is rejected by the RCV harness) and virtual
//! time is frozen at zero (the shipped protocols are time-independent).
//!
//! FIFO: Lamport's algorithm assumes FIFO channels, so its harness
//! restricts delivery to per-channel heads ([`ModelChecker::fifo`]);
//! exploring it with arbitrary reordering produces a genuine mutual
//! exclusion violation — kept as a test that the counterexample machinery
//! detects and renders real safety bugs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapters;
mod checker;
mod harness;
mod state;

pub use adapters::McProtocol;
pub use checker::{
    Action, Bfs, Counterexample, Dfs, Frontier, McReport, McSummary, ModelChecker, StateId,
};
pub use harness::{lamport_checker, rcv_checker, rcv_recovery_checker, ricart_checker};
pub use state::{McEvent, SystemState};
