//! Ready-made scenario builders for the shipped algorithms.

use rcv_baselines::{Lamport, RicartAgrawala};
use rcv_core::{check_nonl_consistency, ForwardPolicy, RcvConfig, RcvNode};
use rcv_simnet::{NodeId, RetryPolicy};

use crate::checker::ModelChecker;

/// A checker over `n` RCV nodes with the given forwarding policy
/// (burst-once by default; tune with the builder methods).
///
/// The policy must be deterministic — the checker's dispatch has to be a
/// pure function of the node state — so `ForwardPolicy::Random` is
/// rejected; `Sequential`, `MostStale` and `Freshest` consult only ids
/// and row versions.
///
/// Installs the RCV whole-system invariant: Lemma 6/7 NONL prefix
/// consistency across every node pair, checked in every visited state
/// (per-node lemmas and anomaly freedom come from the
/// [`crate::McProtocol`] impl on [`RcvNode`]).
pub fn rcv_checker(n: usize, policy: ForwardPolicy) -> ModelChecker<RcvNode> {
    assert!(
        !matches!(policy, ForwardPolicy::Random),
        "model checking requires a deterministic forwarding policy"
    );
    let nodes = (0..n)
        .map(|i| {
            RcvNode::with_config(
                NodeId::new(i as u32),
                n,
                RcvConfig {
                    forward: policy,
                    ..RcvConfig::paper()
                },
            )
        })
        .collect();
    ModelChecker::new(nodes).cross_invariant(|nodes: &[RcvNode]| check_nonl_consistency(nodes))
}

/// A crash-recovery checker: [`rcv_checker`] plus one crash-restart
/// branched at every state over every node (any node, any instant — see
/// [`ModelChecker::crash_restarts`]), optionally with the retransmission
/// extension armed so interrupted campaigns re-issue.
///
/// The retry policy, when given, must be jitter-free (the checker's
/// determinism contract) and **bounded**: an unbounded policy re-arms
/// its timer after every retransmission and the state space never
/// closes.
pub fn rcv_recovery_checker(
    n: usize,
    policy: ForwardPolicy,
    retry: Option<RetryPolicy>,
) -> ModelChecker<RcvNode> {
    assert!(
        !matches!(policy, ForwardPolicy::Random),
        "model checking requires a deterministic forwarding policy"
    );
    if let Some(r) = retry {
        assert_eq!(
            r.jitter, 0,
            "model checking requires a jitter-free retry policy"
        );
        assert!(
            r.is_bounded(),
            "model checking requires a bounded retry budget"
        );
    }
    let nodes = (0..n)
        .map(|i| {
            RcvNode::with_config(
                NodeId::new(i as u32),
                n,
                RcvConfig {
                    forward: policy,
                    retry,
                },
            )
        })
        .collect();
    ModelChecker::new(nodes)
        .cross_invariant(|nodes: &[RcvNode]| check_nonl_consistency(nodes))
        .crash_restarts(1)
}

/// A checker over `n` Ricart–Agrawala nodes. RA tolerates arbitrary
/// reordering, so delivery is unordered.
pub fn ricart_checker(n: usize) -> ModelChecker<RicartAgrawala> {
    ModelChecker::new(
        NodeId::all(n)
            .map(|id| RicartAgrawala::new(id, n))
            .collect(),
    )
}

/// A checker over `n` Lamport-algorithm nodes, in FIFO mode: Lamport's
/// correctness argument requires ordered channels (a RELEASE or ACK
/// overtaking its REQUEST breaks the queue reasoning). Run it with
/// `.fifo(false)` to watch the checker produce the genuine
/// mutual-exclusion counterexample — the crate keeps a test doing exactly
/// that.
pub fn lamport_checker(n: usize) -> ModelChecker<Lamport> {
    ModelChecker::new(NodeId::all(n).map(|id| Lamport::new(id, n)).collect()).fifo(true)
}
