//! The [`ModelChecker`]: exhaustive search over delivery orders and
//! bounded fault choices, with pluggable DFS/BFS frontiers and
//! counterexample reconstruction.

use std::collections::{HashMap, VecDeque};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rcv_simnet::{
    Ctx, NodeId, ProtocolMessage, RestartOutcome, SimDuration, SimTime, Trace, TraceEvent,
};

use crate::adapters::McProtocol;
use crate::state::{fingerprint, McEvent, SystemState};

/// Index of a visited state in the checker's arena.
pub type StateId = u32;

/// What the checker did with a chosen pending event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Deliver (or fire) the event.
    Deliver,
    /// Lose the message in the network (consumes one drop budget).
    Drop,
    /// Deliver the message *and* leave a second in-flight copy
    /// (consumes one duplication budget).
    Duplicate,
}

/// Search-order abstraction over the frontier of unexpanded states.
///
/// [`Dfs`] dives (low memory on long thin graphs); [`Bfs`] expands in
/// depth layers, so the first violation it reports lies on a *shortest*
/// path — minimal counterexamples.
pub trait Frontier {
    /// Adds a newly discovered state.
    fn push(&mut self, id: StateId);
    /// Removes the next state to expand.
    fn pop(&mut self) -> Option<StateId>;
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Depth-first search order (a stack).
#[derive(Default)]
pub struct Dfs {
    stack: Vec<StateId>,
}

impl Frontier for Dfs {
    fn push(&mut self, id: StateId) {
        self.stack.push(id);
    }
    fn pop(&mut self) -> Option<StateId> {
        self.stack.pop()
    }
    fn name(&self) -> &'static str {
        "dfs"
    }
}

/// Breadth-first search order (a queue); yields minimal counterexamples.
#[derive(Default)]
pub struct Bfs {
    queue: VecDeque<StateId>,
}

impl Frontier for Bfs {
    fn push(&mut self, id: StateId) {
        self.queue.push_back(id);
    }
    fn pop(&mut self) -> Option<StateId> {
        self.queue.pop_front()
    }
    fn name(&self) -> &'static str {
        "bfs"
    }
}

/// A violating execution: the exact step sequence from the initial state,
/// plus its rendering through the simnet trace machinery (one virtual
/// tick per step).
pub struct Counterexample<M> {
    /// What went wrong at the final state.
    pub description: String,
    /// The decision sequence reaching the violation.
    pub steps: Vec<(McEvent<M>, Action)>,
    /// Human-readable narrated replay ([`Trace::render`] format).
    pub trace: String,
}

impl<M: std::fmt::Debug> std::fmt::Display for Counterexample<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "VIOLATION: {}", self.description)?;
        writeln!(
            f,
            "{} steps from the initial state; replay:",
            self.steps.len()
        )?;
        write!(f, "{}", self.trace)
    }
}

/// Exploration outcome and statistics.
pub struct McReport<M> {
    /// Which frontier drove the search.
    pub strategy: &'static str,
    /// Unique states visited (after canonicalization).
    pub visited: u64,
    /// Transitions applied (edges, including those reaching known states).
    pub transitions: u64,
    /// Terminal states (nothing in flight) reached.
    pub terminals: u64,
    /// Transitions that landed on an already-visited state.
    pub revisits: u64,
    /// States left unexpanded because of the depth bound.
    pub truncated: u64,
    /// Deepest state expanded.
    pub max_depth_seen: u32,
    /// Set when the state cap stopped the search early.
    pub aborted: Option<String>,
    /// The first violation found, if any.
    pub violation: Option<Counterexample<M>>,
}

/// [`McReport`] with the message type erased: what harnesses, binaries
/// and JSON artifacts consume when they range over heterogeneous
/// protocols.
#[derive(Clone, Debug)]
pub struct McSummary {
    /// Which frontier drove the search.
    pub strategy: &'static str,
    /// Unique states visited (after canonicalization).
    pub visited: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Terminal states reached.
    pub terminals: u64,
    /// Transitions that landed on an already-visited state.
    pub revisits: u64,
    /// States left unexpanded because of the depth bound.
    pub truncated: u64,
    /// Deepest state expanded.
    pub max_depth_seen: u32,
    /// Set when the state cap stopped the search early.
    pub aborted: Option<String>,
    /// True when the whole reachable state space was covered.
    pub exhausted: bool,
    /// `(description, steps, narrated replay)` of the first violation.
    pub violation: Option<(String, usize, String)>,
}

impl McSummary {
    /// One-line statistics summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} states, {} transitions, {} terminals, {} revisits, max depth {}{}{}",
            self.strategy,
            self.visited,
            self.transitions,
            self.terminals,
            self.revisits,
            self.max_depth_seen,
            if self.truncated > 0 {
                format!(", {} depth-truncated", self.truncated)
            } else {
                String::new()
            },
            match &self.aborted {
                Some(a) => format!(", ABORTED: {a}"),
                None => String::new(),
            },
        )
    }
}

impl<M: std::fmt::Debug> McReport<M> {
    /// True when the whole reachable state space was covered (no depth
    /// truncation, no state-cap abort).
    pub fn exhausted(&self) -> bool {
        self.aborted.is_none() && self.truncated == 0
    }

    /// Erases the message type for algorithm-agnostic consumers.
    pub fn erase(&self) -> McSummary {
        McSummary {
            strategy: self.strategy,
            visited: self.visited,
            transitions: self.transitions,
            terminals: self.terminals,
            revisits: self.revisits,
            truncated: self.truncated,
            max_depth_seen: self.max_depth_seen,
            aborted: self.aborted.clone(),
            exhausted: self.exhausted(),
            violation: self
                .violation
                .as_ref()
                .map(|v| (v.description.clone(), v.steps.len(), v.trace.clone())),
        }
    }

    /// One-line statistics summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} states, {} transitions, {} terminals, {} revisits, max depth {}{}{}",
            self.strategy,
            self.visited,
            self.transitions,
            self.terminals,
            self.revisits,
            self.max_depth_seen,
            if self.truncated > 0 {
                format!(", {} depth-truncated", self.truncated)
            } else {
                String::new()
            },
            match &self.aborted {
                Some(a) => format!(", ABORTED: {a}"),
                None => String::new(),
            },
        )
    }

    /// Asserts the search exhausted the state space violation-free;
    /// panics with the counterexample replay otherwise. Test ergonomics.
    #[track_caller]
    pub fn expect_clean_exhaustive(&self) -> &Self {
        if let Some(v) = &self.violation {
            panic!("model checking found a violation ({})\n{v}", self.summary());
        }
        assert!(
            self.exhausted(),
            "exploration did not exhaust the state space: {}",
            self.summary()
        );
        self
    }
}

struct ArenaNode<P: McProtocol>
where
    P::Message: PartialEq,
{
    parent: StateId,
    /// The decision that produced this state (`None` for the root).
    via: Option<(McEvent<P::Message>, Action)>,
    /// Present until the state is expanded (or abandoned).
    state: Option<SystemState<P>>,
    depth: u32,
}

/// Result of applying one decision to a state.
struct Applied<P: McProtocol>
where
    P::Message: PartialEq,
{
    state: SystemState<P>,
    /// A safety violation detected *during* the step (mutual exclusion).
    violation: Option<String>,
}

/// Exhaustive explorer for one scenario: a fixed node set, a set of
/// requesters each performing `rounds` request/enter/exit cycles, and
/// bounded loss/duplication budgets. See the crate docs for the
/// semantics; see [`crate::rcv_checker`] and friends for ready-made
/// scenario builders.
pub struct ModelChecker<P: McProtocol>
where
    P::Message: PartialEq,
{
    nodes: Vec<P>,
    requesters: Vec<NodeId>,
    rounds: u32,
    fifo: bool,
    drops: u32,
    dups: u32,
    crashes: u32,
    max_depth: Option<u32>,
    max_states: u64,
    #[allow(clippy::type_complexity)]
    cross_invariant: Option<Box<dyn Fn(&[P]) -> Result<(), String>>>,
}

impl<P: McProtocol> ModelChecker<P>
where
    P::Message: PartialEq,
{
    /// A checker over `nodes` (indexed by id) where, by default, every
    /// node performs one request (the paper's synchronized burst), with
    /// reliable unordered delivery and no fault budgets.
    pub fn new(nodes: Vec<P>) -> Self {
        assert!(!nodes.is_empty(), "checker needs at least one node");
        let n = nodes.len();
        ModelChecker {
            nodes,
            requesters: NodeId::all(n).collect(),
            rounds: 1,
            fifo: false,
            drops: 0,
            dups: 0,
            crashes: 0,
            max_depth: None,
            max_states: 20_000_000,
            cross_invariant: None,
        }
    }

    /// Restricts which nodes issue requests (default: all).
    pub fn requesters(mut self, requesters: Vec<NodeId>) -> Self {
        let n = self.nodes.len();
        assert!(requesters.iter().all(|r| r.index() < n));
        self.requesters = requesters;
        self
    }

    /// Number of request/enter/exit cycles per requester (default 1).
    pub fn rounds(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1);
        self.rounds = rounds;
        self
    }

    /// Restricts delivery to per-channel FIFO order. Required for
    /// protocols whose correctness assumes ordered channels (Lamport).
    pub fn fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Loss budget: along any single path the checker may lose at most
    /// this many messages (each loss is branched at every in-flight
    /// message).
    pub fn drops(mut self, drops: u32) -> Self {
        self.drops = drops;
        self
    }

    /// Duplication budget, branched like the loss budget.
    pub fn dups(mut self, dups: u32) -> Self {
        self.dups = dups;
        self
    }

    /// Crash-restart budget: along any single path the checker may crash
    /// (and immediately restart) at most this many nodes, branched at
    /// **every** state over **every** node — any node, any instant. A
    /// crash drops everything in flight toward the victim plus its armed
    /// timers, evicts it from the CS if it was the holder (a dead process
    /// occupies nothing; the aborted hold does not count as a
    /// completion), then runs the protocol's `on_restart` hook, with the
    /// engine's environment semantics: a node that rejoined idle with a
    /// request interrupted gets it re-issued, one that resumed its
    /// request internally keeps the round open.
    pub fn crash_restarts(mut self, crashes: u32) -> Self {
        self.crashes = crashes;
        self
    }

    /// Bounds the search depth (decisions from the initial state); states
    /// at the bound are counted as `truncated` instead of expanded.
    pub fn max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Hard cap on stored states; the search aborts (reported, not
    /// panicking) when it is hit.
    pub fn max_states(mut self, max: u64) -> Self {
        self.max_states = max.max(1);
        self
    }

    /// Whole-system invariant checked in every visited state (e.g. the
    /// paper's Lemma 6/7 NONL prefix consistency for RCV).
    pub fn cross_invariant(mut self, f: impl Fn(&[P]) -> Result<(), String> + 'static) -> Self {
        self.cross_invariant = Some(Box::new(f));
        self
    }

    /// Explores depth-first.
    pub fn run_dfs(&self) -> McReport<P::Message> {
        self.run(&mut Dfs::default())
    }

    /// Explores breadth-first (minimal counterexamples).
    pub fn run_bfs(&self) -> McReport<P::Message> {
        self.run(&mut Bfs::default())
    }

    /// Runs the exhaustive search under the given frontier.
    pub fn run(&self, frontier: &mut dyn Frontier) -> McReport<P::Message> {
        let mut report = McReport {
            strategy: frontier.name(),
            visited: 0,
            transitions: 0,
            terminals: 0,
            revisits: 0,
            truncated: 0,
            max_depth_seen: 0,
            aborted: None,
            violation: None,
        };
        let mut scratch: Vec<TraceEvent> = Vec::new();
        let (root, root_violation) = self.build_initial(&mut scratch, false);
        let mut visited: HashMap<u128, u32> = HashMap::new();
        visited.insert(fingerprint(&root, self.fifo), 0);
        let mut arena: Vec<ArenaNode<P>> = Vec::new();
        report.visited = 1;
        if let Some(v) = root_violation.or_else(|| self.check_state(&root)) {
            arena.push(ArenaNode {
                parent: 0,
                via: None,
                state: None,
                depth: 0,
            });
            report.violation = Some(self.counterexample(&arena, 0, None, v));
            return report;
        }
        arena.push(ArenaNode {
            parent: 0,
            via: None,
            state: Some(root),
            depth: 0,
        });
        frontier.push(0);

        while let Some(id) = frontier.pop() {
            let state = arena[id as usize]
                .state
                .take()
                .expect("arena states are expanded exactly once");
            let depth = arena[id as usize].depth;
            report.max_depth_seen = report.max_depth_seen.max(depth);
            let choices = self.choices(&state);
            if state.pending.is_empty() {
                // Quiescent: no further event can occur without a fresh
                // fault. Liveness is judged HERE, even when crash budget
                // remains — a crash the checker *could still inject* lies
                // in the future and must not excuse a stall that has
                // already happened.
                if let Some(v) = self.check_goal(&state) {
                    report.violation = Some(self.counterexample(&arena, id, None, v));
                    return report;
                }
                if state.crashes_left == 0 {
                    report.terminals += 1;
                    continue;
                }
            }
            if self.max_depth.is_some_and(|d| depth >= d) {
                report.truncated += 1;
                continue;
            }
            // Pending-event decisions, then — while the budget lasts — a
            // crash-restart of every node: any node, any instant.
            let mut vias: Vec<(McEvent<P::Message>, Action)> = choices
                .into_iter()
                .map(|(idx, action)| (state.pending[idx].clone(), action))
                .collect();
            if state.crashes_left > 0 {
                vias.extend(
                    NodeId::all(self.nodes.len())
                        .map(|node| (McEvent::CrashRestart { node }, Action::Deliver)),
                );
            }
            for via in vias {
                report.transitions += 1;
                let applied = self.apply(&state, &via.0, via.1, SimTime::ZERO, &mut scratch, false);
                if let Some(v) = applied
                    .violation
                    .or_else(|| self.check_state(&applied.state))
                {
                    report.violation = Some(self.counterexample(&arena, id, Some(via), v));
                    return report;
                }
                let fp = fingerprint(&applied.state, self.fifo);
                let child_depth = depth + 1;
                // With a depth bound, a known state rediscovered on a
                // shorter path must be re-expanded: the deeper visit may
                // have been truncated before covering its successors.
                let explore = match visited.get(&fp) {
                    None => true,
                    Some(&d0) => self.max_depth.is_some() && child_depth < d0,
                };
                if !explore {
                    report.revisits += 1;
                    continue;
                }
                visited.insert(fp, child_depth);
                if arena.len() as u64 >= self.max_states {
                    report.aborted = Some(format!("state cap {} reached", self.max_states));
                    return report;
                }
                arena.push(ArenaNode {
                    parent: id,
                    via: Some(via),
                    state: Some(applied.state),
                    depth: child_depth,
                });
                report.visited += 1;
                frontier.push((arena.len() - 1) as StateId);
            }
        }
        report
    }

    /// Builds the initial state: every requester issues its request
    /// before anything is delivered (requests do not interact at issue
    /// time, so issue order is irrelevant).
    fn build_initial(
        &self,
        trace: &mut Vec<TraceEvent>,
        record: bool,
    ) -> (SystemState<P>, Option<String>) {
        let n = self.nodes.len();
        let mut s = SystemState {
            nodes: self.nodes.clone(),
            pending: Vec::new(),
            occupant: None,
            completed: vec![0; n],
            drops_left: self.drops,
            dups_left: self.dups,
            crashes_left: self.crashes,
        };
        let at = SimTime::ZERO;
        let mut violation = None;
        for &r in &self.requesters {
            if record {
                trace.push(TraceEvent::Arrival { at, node: r });
            }
            let enter = dispatch(
                &mut s.nodes,
                &mut s.pending,
                r,
                at,
                trace,
                record,
                |p, ctx| p.on_request(ctx),
            );
            if enter && violation.is_none() {
                violation = self.note_enter(&mut s, r, at, trace, record);
            }
        }
        (s, violation)
    }

    /// The distinct decisions available in `s`. Identical in-flight
    /// events are merged (either copy leads to the same successor); under
    /// FIFO only each channel's oldest message is deliverable.
    fn choices(&self, s: &SystemState<P>) -> Vec<(usize, Action)> {
        let mut out = Vec::new();
        let mut seen_channels: Vec<(u32, u32)> = Vec::new();
        for (i, ev) in s.pending.iter().enumerate() {
            if self.fifo {
                if let McEvent::Deliver { from, to, .. } = ev {
                    let ch = (from.raw(), to.raw());
                    if seen_channels.contains(&ch) {
                        continue;
                    }
                    seen_channels.push(ch);
                } else if s.pending[..i].contains(ev) {
                    continue;
                }
            } else if s.pending[..i].contains(ev) {
                continue;
            }
            out.push((i, Action::Deliver));
            if ev.is_deliver() {
                if s.drops_left > 0 {
                    out.push((i, Action::Drop));
                }
                if s.dups_left > 0 {
                    out.push((i, Action::Duplicate));
                }
            }
        }
        out
    }

    /// Applies one decision to a copy of `s`. The event is keyed by value
    /// (identical in-flight copies lead to the same successor, so which
    /// copy is removed is immaterial); [`McEvent::CrashRestart`] is
    /// synthesized, never pending, and routes to [`Self::apply_crash`].
    fn apply(
        &self,
        s: &SystemState<P>,
        ev: &McEvent<P::Message>,
        action: Action,
        at: SimTime,
        trace: &mut Vec<TraceEvent>,
        record: bool,
    ) -> Applied<P> {
        if let McEvent::CrashRestart { node } = ev {
            return self.apply_crash(s, *node, at, trace, record);
        }
        let mut next = s.clone();
        let idx = next
            .pending
            .iter()
            .position(|p| p == ev)
            .expect("applied event is in flight");
        // `remove` (not `swap_remove`): within-channel order is FIFO
        // order and must survive the deletion.
        let ev = next.pending.remove(idx);
        let mut violation = None;
        match action {
            Action::Drop => {
                let McEvent::Deliver { from, to, .. } = &ev else {
                    unreachable!("only deliveries can be dropped");
                };
                debug_assert!(next.drops_left > 0);
                next.drops_left -= 1;
                if record {
                    trace.push(TraceEvent::Lost {
                        at,
                        from: *from,
                        to: *to,
                    });
                }
                return Applied {
                    state: next,
                    violation: None,
                };
            }
            Action::Duplicate => {
                debug_assert!(ev.is_deliver() && next.dups_left > 0);
                next.dups_left -= 1;
                // The copy goes to the back of its channel: under FIFO a
                // duplicate arrives after the messages already in flight.
                next.pending.push(ev.clone());
            }
            Action::Deliver => {}
        }
        match ev {
            McEvent::Deliver { from, to, msg } => {
                if record {
                    trace.push(TraceEvent::Deliver {
                        at,
                        from,
                        to,
                        kind: msg.kind(),
                    });
                }
                let enter = dispatch(
                    &mut next.nodes,
                    &mut next.pending,
                    to,
                    at,
                    trace,
                    record,
                    |p, ctx| p.on_message(from, msg, ctx),
                );
                if enter {
                    violation = self.note_enter(&mut next, to, at, trace, record);
                }
            }
            McEvent::CsExit { node } => {
                debug_assert_eq!(
                    next.occupant,
                    Some(node),
                    "CsExit pending only while its node holds the CS"
                );
                next.occupant = None;
                next.completed[node.index()] += 1;
                if record {
                    trace.push(TraceEvent::CsExit { at, node });
                }
                let enter = dispatch(
                    &mut next.nodes,
                    &mut next.pending,
                    node,
                    at,
                    trace,
                    record,
                    |p, ctx| p.on_cs_released(ctx),
                );
                if enter {
                    violation = self.note_enter(&mut next, node, at, trace, record);
                }
                // Multi-round workload: the node immediately re-requests.
                if violation.is_none()
                    && next.completed[node.index()] < self.rounds
                    && self.requesters.contains(&node)
                {
                    if record {
                        trace.push(TraceEvent::Arrival { at, node });
                    }
                    let enter = dispatch(
                        &mut next.nodes,
                        &mut next.pending,
                        node,
                        at,
                        trace,
                        record,
                        |p, ctx| p.on_request(ctx),
                    );
                    if enter {
                        violation = self.note_enter(&mut next, node, at, trace, record);
                    }
                }
            }
            McEvent::Timer { node, tag } => {
                if record {
                    trace.push(TraceEvent::Timer { at, node, tag });
                }
                let enter = dispatch(
                    &mut next.nodes,
                    &mut next.pending,
                    node,
                    at,
                    trace,
                    record,
                    |p, ctx| p.on_timer(tag, ctx),
                );
                if enter {
                    violation = self.note_enter(&mut next, node, at, trace, record);
                }
            }
            McEvent::CrashRestart { .. } => unreachable!("routed to apply_crash above"),
        }
        Applied {
            state: next,
            violation,
        }
    }

    /// Crashes `node` and immediately restarts it (the crash window
    /// collapses to a point). Mirrors the engine's `handle_crash` +
    /// `handle_restart` pair and the threaded runtime's crash window:
    ///
    /// * everything in flight **toward** the victim dies with its process
    ///   (the window black-holes deliveries), as do its armed timers;
    /// * messages the victim already sent survive — they are in the
    ///   network, not in the process;
    /// * a victim holding the CS is evicted without a completion (a dead
    ///   process occupies nothing) and its pending exit is invalidated;
    /// * after `on_restart`: a node that rejoined idle with a request
    ///   interrupted gets it re-issued as a fresh request; one that
    ///   resumed the request internally keeps its round open.
    fn apply_crash(
        &self,
        s: &SystemState<P>,
        node: NodeId,
        at: SimTime,
        trace: &mut Vec<TraceEvent>,
        record: bool,
    ) -> Applied<P> {
        let mut next = s.clone();
        debug_assert!(next.crashes_left > 0);
        next.crashes_left -= 1;
        next.pending.retain(|ev| match ev {
            McEvent::Deliver { to, .. } => *to != node,
            McEvent::Timer { node: n, .. } | McEvent::CsExit { node: n } => *n != node,
            McEvent::CrashRestart { .. } => unreachable!("never pending"),
        });
        let held = next.occupant == Some(node);
        if held {
            next.occupant = None;
        }
        // One outstanding request per node: a requester with rounds left
        // has a live request (issued at the initial burst or at its last
        // exit) that this crash interrupts.
        let interrupted =
            self.requesters.contains(&node) && next.completed[node.index()] < self.rounds;
        if record {
            trace.push(TraceEvent::Crashed {
                at,
                node,
                held_cs: held,
            });
        }
        let mut outcome = RestartOutcome::KeptState;
        let enter = dispatch(
            &mut next.nodes,
            &mut next.pending,
            node,
            at,
            trace,
            record,
            |p, ctx| outcome = p.on_restart(ctx),
        );
        if record {
            trace.push(TraceEvent::Restarted {
                at,
                node,
                recovered: outcome.recovered(),
            });
        }
        let mut violation = None;
        if enter {
            violation = self.note_enter(&mut next, node, at, trace, record);
        }
        if violation.is_none() && outcome == RestartOutcome::RejoinedIdle && interrupted {
            // Engine parity: the environment re-issues the request the
            // crash wiped out, so the expected completion count holds.
            if record {
                trace.push(TraceEvent::Arrival { at, node });
            }
            let enter = dispatch(
                &mut next.nodes,
                &mut next.pending,
                node,
                at,
                trace,
                record,
                |p, ctx| p.on_request(ctx),
            );
            if enter {
                violation = self.note_enter(&mut next, node, at, trace, record);
            }
        }
        Applied {
            state: next,
            violation,
        }
    }

    /// Registers an `enter_cs` intent: mutual exclusion is enforced here,
    /// exactly like the engine's safety monitor.
    fn note_enter(
        &self,
        s: &mut SystemState<P>,
        node: NodeId,
        at: SimTime,
        trace: &mut Vec<TraceEvent>,
        record: bool,
    ) -> Option<String> {
        if let Some(holder) = s.occupant {
            // Narrate the offending entry too: the replay must show the
            // moment the intruder walks in.
            if record {
                trace.push(TraceEvent::CsEnter { at, node });
            }
            return Some(if holder == node {
                format!("{node} entered the CS twice without leaving")
            } else {
                format!("MUTUAL EXCLUSION VIOLATED: {node} entered the CS while {holder} held it")
            });
        }
        s.occupant = Some(node);
        s.pending.push(McEvent::CsExit { node });
        if record {
            trace.push(TraceEvent::CsEnter { at, node });
        }
        None
    }

    /// Per-node and cross-node invariants over a freshly produced state.
    /// With crash branching enabled the per-node hook is the
    /// recovery-tolerant variant ([`McProtocol::check_node_recovering`]):
    /// a crash legitimately trips counters whose accounting assumes no
    /// vote loss (RCV's UL exhaustion).
    fn check_state(&self, s: &SystemState<P>) -> Option<String> {
        for node in &s.nodes {
            let checked = if self.crashes > 0 {
                node.check_node_recovering()
            } else {
                node.check_node()
            };
            if let Err(e) = checked {
                return Some(format!("node invariant: {e}"));
            }
        }
        if let Some(inv) = &self.cross_invariant {
            if let Err(e) = inv(&s.nodes) {
                return Some(format!("cross-node invariant: {e}"));
            }
        }
        None
    }

    /// Quiescent-state goal: every requester finished all its rounds,
    /// unless a message was actually lost or a node actually crashed on
    /// this path (an *attributable* stall — a crash wipes the votes peers
    /// registered at the victim, and with the retry budget spendable
    /// before the crash even happens, some interleavings legitimately
    /// strand a request; duplication alone must never wedge the system).
    fn check_goal(&self, s: &SystemState<P>) -> Option<String> {
        debug_assert!(s.occupant.is_none(), "terminal state with a CS occupant");
        if s.drops_left < self.drops || s.crashes_left < self.crashes {
            return None;
        }
        for &r in &self.requesters {
            if s.completed[r.index()] < self.rounds {
                return Some(format!(
                    "DEADLOCK without attributable fault: nothing in flight but {r} \
                     completed {}/{} rounds",
                    s.completed[r.index()],
                    self.rounds
                ));
            }
        }
        None
    }

    /// Reconstructs the decision path to `last` (plus an optional final
    /// step) and replays it with trace recording: one virtual tick per
    /// decision, rendered through the simnet narrate machinery.
    fn counterexample(
        &self,
        arena: &[ArenaNode<P>],
        last: StateId,
        extra: Option<(McEvent<P::Message>, Action)>,
        description: String,
    ) -> Counterexample<P::Message> {
        let mut steps = Vec::new();
        let mut id = last;
        while let Some(via) = &arena[id as usize].via {
            steps.push(via.clone());
            id = arena[id as usize].parent;
        }
        steps.reverse();
        if let Some(step) = extra {
            steps.push(step);
        }
        let mut events: Vec<TraceEvent> = Vec::new();
        let (mut s, mut violation) = self.build_initial(&mut events, true);
        for (step_no, (ev, action)) in steps.iter().enumerate() {
            if violation.is_some() {
                break;
            }
            let at = SimTime::from_ticks(step_no as u64 + 1);
            let applied = self.apply(&s, ev, *action, at, &mut events, true);
            violation = applied.violation;
            s = applied.state;
        }
        let mut tr = Trace::with_capacity(events.len().max(1));
        for e in events {
            tr.record(e);
        }
        Counterexample {
            description,
            steps,
            trace: tr.render(),
        }
    }
}

/// Runs one protocol handler with intents captured into the state: sends
/// become pending deliveries, timers pending timer events; returns the
/// `enter_cs` intent. The RNG is fixed and virtual time is frozen — the
/// determinism contract of [`McProtocol`].
fn dispatch<P: McProtocol>(
    nodes: &mut [P],
    pending: &mut Vec<McEvent<P::Message>>,
    node: NodeId,
    at: SimTime,
    trace: &mut Vec<TraceEvent>,
    record: bool,
    f: impl FnOnce(&mut P, &mut Ctx<'_, P::Message>),
) -> bool
where
    P::Message: PartialEq,
{
    let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
    let mut enter = false;
    let mut timers: Vec<(SimDuration, u64)> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(0);
    {
        let mut ctx = Ctx::new(node, at, &mut rng, &mut outbox, &mut enter, &mut timers);
        f(&mut nodes[node.index()], &mut ctx);
    }
    for (to, msg) in outbox {
        if record {
            trace.push(TraceEvent::Send {
                at,
                from: node,
                to,
                kind: msg.kind(),
                detail: format!("{msg:?}"),
            });
        }
        pending.push(McEvent::Deliver {
            from: node,
            to,
            msg,
        });
    }
    for (_, tag) in timers {
        pending.push(McEvent::Timer { node, tag });
    }
    enter
}
