//! # rcv-simnet — discrete-event substrate for distributed mutex protocols
//!
//! This crate is the simulation substrate used to reproduce the evaluation of
//! *Cao, Zhou, Chen, Wu — "An Efficient Distributed Mutual Exclusion
//! Algorithm Based on Relative Consensus Voting" (IPDPS 2004)*. The paper
//! evaluates its algorithm on an event-driven simulator in the style of
//! Singhal (1989): `N` fully connected nodes, constant message propagation
//! delay `Tn`, constant CS execution time `Tc`, Poisson request arrivals.
//!
//! The substrate provides:
//!
//! * [`SimTime`]/[`SimDuration`] — a virtual clock in abstract time units;
//! * [`EventQueue`] — a deterministic future-event list (ties fire in
//!   insertion order, so a seed fully determines a run);
//! * [`DelayModel`] — constant (the paper's) and jittered/heavy-tailed
//!   delivery models; the latter produce genuinely non-FIFO channels, which
//!   the RCV algorithm claims to tolerate;
//! * [`MutexProtocol`]/[`Ctx`] — the sans-io state-machine interface every
//!   algorithm in this workspace implements, so the same protocol code runs
//!   under this simulator and under the real-thread runtime in
//!   `rcv-runtime`;
//! * [`SafetyMonitor`] — an omniscient observer checking mutual exclusion
//!   externally and collecting synchronization-delay samples;
//! * [`SimMetrics`] — NME / response-time bookkeeping matching the paper's
//!   measures;
//! * [`Engine`] — the event loop tying it all together.
//!
//! ## Example
//!
//! ```
//! use rcv_simnet::{Engine, SimConfig, BurstOnce};
//! # use rcv_simnet::{Ctx, MutexProtocol, NodeId, ProtocolMessage};
//! # #[derive(Clone, Debug)] struct Never;
//! # impl ProtocolMessage for Never { fn kind(&self) -> &'static str { "X" } }
//! # struct Selfish;
//! # impl MutexProtocol for Selfish {
//! #     type Message = Never;
//! #     fn name(&self) -> &'static str { "selfish" }
//! #     fn on_request(&mut self, ctx: &mut Ctx<'_, Never>) { ctx.enter_cs(); }
//! #     fn on_message(&mut self, _: NodeId, _: Never, _: &mut Ctx<'_, Never>) {}
//! #     fn on_cs_released(&mut self, _: &mut Ctx<'_, Never>) {}
//! # }
//! // A 1-node system with the paper's Tn/Tc; the node enters immediately.
//! let report = Engine::new(SimConfig::paper(1, 42), BurstOnce, |_, _| Selfish).run();
//! assert!(report.is_safe());
//! assert_eq!(report.metrics.completed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod engine;
mod event;
mod faults;
mod ids;
mod metrics;
mod monitor;
pub mod profile;
mod protocol;
mod retry;
mod stats;
mod time;
mod trace;
mod workload;

pub use delay::DelayModel;
pub use engine::{Engine, SimConfig, SimReport};
pub use event::{Event, EventKind, EventQueue};
pub use faults::{CrashWindow, FaultPlan};
pub use ids::NodeId;
pub use metrics::{RequestRecord, SimMetrics};
pub use monitor::{MonitorParts, SafetyMonitor, Violation};
pub use protocol::{Ctx, MutexProtocol, ProtocolMessage, RestartOutcome};
pub use retry::RetryPolicy;
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
pub use workload::{ArrivalSink, BurstOnce, FixedTrace, Workload};
