//! Per-phase cost probes for the simulation hot path.
//!
//! The large-N optimization work needs the per-event cost *split* —
//! snapshot-take / merge / normalize / order / metrics, with the engine as
//! the residual — so the next bottleneck is measured, not guessed. The
//! probes live here (the lowest crate in the workspace graph) so both
//! `rcv-core` and the engine can stamp phases into one accumulator.
//!
//! Zero overhead when dark: every probe site starts with one relaxed
//! atomic load; timing and accumulation only happen after
//! [`set_enabled`]`(true)`. Accumulators are thread-local (the engine is
//! single-threaded per run; parallel harnesses each profile their own
//! thread) and are drained by [`take`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A hot-path phase the probes can attribute time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbePhase {
    /// Taking a message snapshot of a node's SI (`MsgBody::snapshot`).
    SnapshotTake,
    /// The Exchange procedure's merge phases (everything before
    /// normalization).
    Merge,
    /// The post-merge normalization pass (scrub + zombie purge).
    Normalize,
    /// The Order procedure (Relative Consensus Voting).
    Order,
    /// Metrics bookkeeping in the engine's send/delivery path.
    Metrics,
}

/// Number of phases (array size for accumulators).
pub const PROBE_PHASES: usize = 5;

/// Display names, indexed by `ProbePhase as usize`.
pub const PROBE_NAMES: [&str; PROBE_PHASES] =
    ["snapshot", "merge", "normalize", "order", "metrics"];

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Per-phase `(nanoseconds, invocations)` for this thread.
    static ACC: RefCell<[(u64, u64); PROBE_PHASES]> =
        const { RefCell::new([(0, 0); PROBE_PHASES]) };
}

/// Turns the probes on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the probes are live.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts timing `phase`; the returned guard records on drop. When probes
/// are dark this is a single relaxed load and the guard is inert.
#[inline]
pub fn probe(phase: ProbePhase) -> ProbeGuard {
    ProbeGuard {
        live: enabled().then(|| (phase, Instant::now())),
    }
}

/// RAII phase timer returned by [`probe`].
pub struct ProbeGuard {
    live: Option<(ProbePhase, Instant)>,
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        if let Some((phase, t0)) = self.live.take() {
            let dt = t0.elapsed().as_nanos() as u64;
            ACC.with(|acc| {
                let slot = &mut acc.borrow_mut()[phase as usize];
                slot.0 += dt;
                slot.1 += 1;
            });
        }
    }
}

/// One phase's accumulated cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Total nanoseconds attributed to the phase.
    pub nanos: u64,
    /// Number of probe invocations.
    pub count: u64,
}

/// Drains this thread's accumulators and returns them, indexed like
/// [`PROBE_NAMES`].
pub fn take() -> [PhaseCost; PROBE_PHASES] {
    ACC.with(|acc| {
        let mut a = acc.borrow_mut();
        let out = a.map(|(nanos, count)| PhaseCost { nanos, count });
        *a = [(0, 0); PROBE_PHASES];
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dark_probes_accumulate_nothing() {
        set_enabled(false);
        let _ = take();
        {
            let _g = probe(ProbePhase::Merge);
        }
        assert!(take().iter().all(|c| c.count == 0));
    }

    #[test]
    fn live_probes_count_and_reset() {
        set_enabled(true);
        let _ = take();
        {
            let _g = probe(ProbePhase::Normalize);
        }
        {
            let _g = probe(ProbePhase::Normalize);
        }
        let costs = take();
        set_enabled(false);
        assert_eq!(costs[ProbePhase::Normalize as usize].count, 2);
        assert_eq!(costs[ProbePhase::Merge as usize].count, 0);
        // Drained: a second take starts from zero.
        assert!(take().iter().all(|c| c.count == 0));
    }
}
