//! Simulation events and the deterministic event queue.
//!
//! The queue is a **calendar (bucket) queue**: a ring of per-tick FIFO
//! buckets covering the near future, with a sorted overflow heap for
//! far-future events. The paper's delay model (`Tn = 5`, `Tc = 10`,
//! constant delay) schedules almost every event a small bounded distance
//! ahead of the clock, so in steady state every `schedule`/`pop` is O(1)
//! and allocation-free (bucket storage is reused across the run). Events
//! beyond the horizon — protocol timers, fault plans, Poisson
//! inter-arrival gaps — fall back to a binary heap, preserving exact
//! `(time, seq)` order across both structures.

use core::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// What happens when an event fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind<M> {
    /// A message sent by `from` reaches `to`'s incoming message queue.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// The workload makes `node` request the critical section.
    Arrival {
        /// The requesting node.
        node: NodeId,
    },
    /// `node` finishes executing the critical section.
    CsExit {
        /// The node leaving the CS.
        node: NodeId,
        /// The engine's per-node CS generation at grant time. A crash
        /// eviction bumps the generation, so the dead hold's pending exit
        /// can never terminate a CS the node re-entered after recovery.
        epoch: u64,
    },
    /// A timer set by `node` via [`crate::Ctx::set_timer`] fires.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The tag the protocol attached when arming the timer.
        tag: u64,
    },
    /// Start of a crash window: `node` goes down.
    Crash {
        /// The node that dies.
        node: NodeId,
    },
    /// End of a crash window: `node` comes back and its
    /// [`crate::MutexProtocol::on_restart`] hook runs.
    Restart {
        /// The node that restarts.
        node: NodeId,
    },
}

/// An event scheduled at a virtual time.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// What fires.
    pub kind: EventKind<M>,
}

/// Queue entry; carries the insertion sequence number so that events that
/// tie on time fire in insertion order, keeping runs bit-for-bit
/// deterministic.
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Default near-future coverage when no horizon is given: enough for the
/// paper's `max(Tn, Tc) = 10` with headroom.
const DEFAULT_HORIZON_TICKS: u64 = 15;

/// Hard cap on the bucket ring so a pathological horizon (e.g. a huge
/// `cs_duration`) cannot balloon memory; everything past the ring simply
/// uses the overflow heap.
const MAX_BUCKETS: u64 = 4096;

/// Deterministic future-event list (calendar queue).
///
/// Events within `horizon` ticks of the clock go into a ring of per-tick
/// FIFO buckets (O(1) push/pop, storage reused); later events go into a
/// sorted overflow heap. `pop` always yields the globally smallest
/// `(time, seq)` pair, so (a) equal timestamps fire in insertion order and
/// (b) a seed fully determines a run. Scheduling into the past is a
/// causality bug in the caller and is rejected with a debug assertion.
pub struct EventQueue<M> {
    /// `buckets[t & mask]` holds the events at tick `t`; all entries of one
    /// bucket share a tick because the ring only covers `[now, now + len)`
    /// and ticks are fully drained before the window moves past them.
    buckets: Vec<VecDeque<Scheduled<M>>>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: u64,
    /// Events currently in the ring (not counting the overflow heap).
    ring_len: usize,
    /// Far-future events, min-ordered by `(time, seq)`.
    overflow: BinaryHeap<Scheduled<M>>,
    /// Lower bound on the earliest occupied ring tick: pops advance it to
    /// the tick they found, schedules lower it when inserting earlier.
    /// Keeps the next-tick scan amortized O(1) even when the ring is
    /// large and sparsely occupied.
    scan_from: u64,
    next_seq: u64,
    now: SimTime,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue positioned at `t = 0` with a default
    /// near-future horizon; use [`EventQueue::with_horizon`] to size the
    /// ring to the actual scheduling distances of the workload.
    pub fn new() -> Self {
        Self::with_horizon(SimDuration::from_ticks(DEFAULT_HORIZON_TICKS))
    }

    /// Creates an empty queue whose bucket ring covers at least
    /// `[now, now + horizon]`: every event scheduled at most `horizon`
    /// ticks ahead is guaranteed the O(1) bucket path. The ring is rounded
    /// up to a power of two and capped (far-future events are still
    /// correct — they take the overflow heap).
    pub fn with_horizon(horizon: SimDuration) -> Self {
        let want = horizon.ticks().saturating_add(1).clamp(1, MAX_BUCKETS);
        let len = want.next_power_of_two();
        EventQueue {
            buckets: (0..len).map(|_| VecDeque::new()).collect(),
            mask: len - 1,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            scan_from: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events currently on the O(1) bucket-ring path.
    ///
    /// The ring covers `[now, now + ring_capacity())`: an event lands here
    /// iff its delay from `now` at schedule time is **strictly less** than
    /// [`EventQueue::ring_capacity`]. Exposed so tests can pin the
    /// ring/overflow boundary exactly; the split is a performance detail,
    /// never an ordering one.
    pub fn ring_len(&self) -> usize {
        self.ring_len
    }

    /// Events currently on the far-future overflow-heap path
    /// (scheduled at `now + ring_capacity()` or later).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Number of per-tick buckets in the ring: the `with_horizon` request
    /// `+ 1`, rounded up to a power of two and capped. The first delay
    /// that takes the overflow path is exactly this many ticks.
    pub fn ring_capacity(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Schedules `kind` to fire at `at`.
    ///
    /// `at` must not precede the current clock; this is a causality bug in
    /// the caller and is rejected with a debug assertion (release builds
    /// clamp to `now` rather than corrupt the ring).
    pub fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { at, seq, kind };
        if at.ticks() - self.now.ticks() < self.buckets.len() as u64 {
            self.buckets[(at.ticks() & self.mask) as usize].push_back(s);
            self.ring_len += 1;
            self.scan_from = self.scan_from.min(at.ticks());
        } else {
            self.overflow.push(s);
        }
    }

    /// Tick of the earliest non-empty bucket, if the ring holds anything.
    ///
    /// Every ring event lies in `[now, now + len)` — it was scheduled within
    /// the horizon of a clock that has only moved forward since — and
    /// `scan_from` is a lower bound on the earliest of them, so a bounded
    /// scan from `max(now, scan_from)` finds the earliest occupied tick
    /// without re-walking buckets earlier pops already saw empty. (Every
    /// tick the scan visits is ≥ `now` and within one ring length of the
    /// earliest event, so an occupied bucket it meets holds exactly that
    /// tick's events — no modulo aliasing.)
    fn next_ring_tick(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let start = self.now.ticks().max(self.scan_from);
        (start..start + self.buckets.len() as u64)
            .find(|&t| !self.buckets[(t & self.mask) as usize].is_empty())
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<M>> {
        // The candidates: the FIFO front of the earliest non-empty bucket
        // (minimal seq for its tick, since seq grows with insertion) and
        // the overflow top. The smaller `(time, seq)` wins.
        let ring_tick = self.next_ring_tick();
        if let Some(t) = ring_tick {
            // Cache the scan result: `t` is the earliest occupied ring
            // tick, a valid lower bound until an earlier schedule lowers
            // it — so overflow pops interleaved before a distant ring
            // event don't re-walk the same empty buckets.
            self.scan_from = t;
        }
        let from_overflow = match (ring_tick, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(t), Some(o)) => {
                let front = self.buckets[(t & self.mask) as usize]
                    .front()
                    .expect("scanned non-empty");
                (o.at.ticks(), o.seq) < (t, front.seq)
            }
        };
        let s = if from_overflow {
            self.overflow.pop().expect("peeked above")
        } else {
            let t = ring_tick.expect("ring candidate chosen");
            self.ring_len -= 1;
            self.buckets[(t & self.mask) as usize]
                .pop_front()
                .expect("scanned non-empty")
        };
        self.now = s.at;
        Some(Event {
            at: s.at,
            kind: s.kind,
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let ring = self.next_ring_tick().map(SimTime::from_ticks);
        let over = self.overflow.peek().map(|s| s.at);
        match (ring, over) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(
            t(5),
            EventKind::Arrival {
                node: NodeId::new(0),
            },
        );
        q.schedule(
            t(1),
            EventKind::Arrival {
                node: NodeId::new(1),
            },
        );
        q.schedule(
            t(3),
            EventKind::Arrival {
                node: NodeId::new(2),
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..8u32 {
            q.schedule(
                t(7),
                EventKind::Arrival {
                    node: NodeId::new(i),
                },
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival { node } => node.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(
            t(4),
            EventKind::CsExit {
                node: NodeId::new(0),
                epoch: 0,
            },
        );
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(t(4)));
        q.pop();
        assert_eq!(q.now(), t(4));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(
            t(10),
            EventKind::CsExit {
                node: NodeId::new(0),
                epoch: 0,
            },
        );
        q.pop();
        q.schedule(
            t(3),
            EventKind::CsExit {
                node: NodeId::new(0),
                epoch: 0,
            },
        );
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(
            t(2),
            EventKind::Arrival {
                node: NodeId::new(0),
            },
        );
        q.pop();
        // Zero-delay local events at the current instant are legal.
        q.schedule(
            q.now() + SimDuration::ZERO,
            EventKind::Arrival {
                node: NodeId::new(1),
            },
        );
        assert_eq!(q.pop().unwrap().at, t(2));
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_stay_ordered() {
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(4));
        // Way beyond any horizon: timers / fault-plan style events.
        q.schedule(
            t(10_000),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 1,
            },
        );
        q.schedule(
            t(500),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 2,
            },
        );
        q.schedule(
            t(2),
            EventKind::Arrival {
                node: NodeId::new(0),
            },
        );
        assert_eq!(q.len(), 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![2, 500, 10_000]);
    }

    #[test]
    fn ties_across_ring_and_overflow_respect_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(4));
        // seq 0 lands in the overflow heap (beyond horizon at schedule time).
        q.schedule(
            t(100),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 0,
            },
        );
        // Drain the clock close to t=100 so a bucket event can tie with it.
        q.schedule(
            t(99),
            EventKind::Arrival {
                node: NodeId::new(9),
            },
        );
        assert_eq!(q.pop().unwrap().at, t(99));
        // seq 2 at the same tick, but in the ring: must fire AFTER seq 0.
        q.schedule(
            t(100),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 2,
            },
        );
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 2]);
    }

    #[test]
    fn ring_wraps_across_many_horizons() {
        // Chain events far past the ring length; each pop schedules the
        // next, exercising bucket reuse across hundreds of wraps.
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(8));
        q.schedule(
            t(3),
            EventKind::Arrival {
                node: NodeId::new(0),
            },
        );
        let mut fired = Vec::new();
        while let Some(e) = q.pop() {
            fired.push(e.at.ticks());
            if fired.len() < 300 {
                q.schedule(
                    e.at + SimDuration::from_ticks(7),
                    EventKind::Arrival {
                        node: NodeId::new(0),
                    },
                );
            }
        }
        assert_eq!(fired.len(), 300);
        assert!(fired.windows(2).all(|w| w[1] == w[0] + 7));
    }

    #[test]
    fn overflow_pops_interleaved_with_pending_ring_event() {
        // Overflow events firing *before* a pending ring event exercise
        // the scan-cursor path (the ring scan result outlives the
        // overflow pops). Order must stay exact throughout.
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(7));
        q.schedule(
            t(50),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 0,
            },
        ); // overflow
        q.schedule(
            t(60),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 1,
            },
        ); // overflow
           // Walk the clock to t=45 with a chain of near-future arrivals.
        q.schedule(
            t(5),
            EventKind::Arrival {
                node: NodeId::new(1),
            },
        );
        while q.now().ticks() < 45 {
            let e = q.pop().unwrap();
            assert!(matches!(e.kind, EventKind::Arrival { .. }));
            if e.at.ticks() < 45 {
                q.schedule(
                    e.at + SimDuration::from_ticks(5),
                    EventKind::Arrival {
                        node: NodeId::new(1),
                    },
                );
            }
        }
        // Pending now: overflow {50, 60} around a ring event at 52.
        q.schedule(
            t(52),
            EventKind::Arrival {
                node: NodeId::new(2),
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![50, 52, 60]);
    }

    #[test]
    fn ring_overflow_boundary_is_exactly_ring_capacity() {
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(4));
        // want = 4 + 1 = 5, rounded up to the next power of two.
        let cap = q.ring_capacity();
        assert_eq!(cap, 8);
        let node = NodeId::new(0);
        // Delay cap-1 is the last ring tick; delay cap is the first
        // overflow tick. The requested horizon itself (4) is well inside.
        q.schedule(t(4), EventKind::Arrival { node });
        q.schedule(t(cap - 1), EventKind::Arrival { node });
        q.schedule(t(cap), EventKind::Arrival { node });
        q.schedule(t(cap + 1), EventKind::Arrival { node });
        assert_eq!((q.ring_len(), q.overflow_len()), (2, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![4, cap - 1, cap, cap + 1]);
    }

    #[test]
    fn boundary_tracks_the_moving_clock() {
        // The ring window is relative to `now`, not to t=0: after the
        // clock advances, the same absolute tick can switch paths.
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(4));
        let cap = q.ring_capacity();
        let node = NodeId::new(0);
        q.schedule(t(cap + 2), EventKind::Arrival { node }); // overflow at now=0
        assert_eq!(q.overflow_len(), 1);
        q.schedule(t(3), EventKind::Arrival { node });
        q.pop(); // now = 3; cap+2 is now within the window
        q.schedule(t(cap + 2), EventKind::Arrival { node }); // ring this time
        assert_eq!((q.ring_len(), q.overflow_len()), (1, 1));
        // Both copies fire at the same tick; the overflow one was
        // scheduled first and must keep its insertion-order priority.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![cap + 2, cap + 2]);
    }

    #[test]
    fn ring_capacity_multiples_do_not_alias() {
        // Ticks congruent modulo the ring length share a bucket slot;
        // events exactly one or two whole ring lengths ahead must not be
        // mistaken for the near event occupying the same slot.
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(4));
        let cap = q.ring_capacity();
        let node = NodeId::new(0);
        q.schedule(t(5), EventKind::Arrival { node });
        q.schedule(t(5 + cap), EventKind::Arrival { node });
        q.schedule(t(5 + 2 * cap), EventKind::Arrival { node });
        assert_eq!((q.ring_len(), q.overflow_len()), (1, 2));
        let mut fired = Vec::new();
        while let Some(e) = q.pop() {
            fired.push(e.at.ticks());
        }
        assert_eq!(fired, vec![5, 5 + cap, 5 + 2 * cap]);
    }

    #[test]
    fn zero_horizon_still_works() {
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::ZERO);
        q.schedule(
            t(0),
            EventKind::Arrival {
                node: NodeId::new(0),
            },
        );
        q.schedule(
            t(5),
            EventKind::Arrival {
                node: NodeId::new(1),
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![0, 5]);
    }

    #[test]
    fn peek_time_sees_both_structures() {
        let mut q: EventQueue<()> = EventQueue::with_horizon(SimDuration::from_ticks(4));
        q.schedule(
            t(1_000),
            EventKind::Timer {
                node: NodeId::new(0),
                tag: 0,
            },
        );
        assert_eq!(q.peek_time(), Some(t(1_000)));
        q.schedule(
            t(2),
            EventKind::Arrival {
                node: NodeId::new(0),
            },
        );
        assert_eq!(q.peek_time(), Some(t(2)));
    }
}
