//! Simulation events and the deterministic event queue.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::NodeId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind<M> {
    /// A message sent by `from` reaches `to`'s incoming message queue.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// The workload makes `node` request the critical section.
    Arrival {
        /// The requesting node.
        node: NodeId,
    },
    /// `node` finishes executing the critical section.
    CsExit {
        /// The node leaving the CS.
        node: NodeId,
    },
    /// A timer set by `node` via [`crate::Ctx::set_timer`] fires.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The tag the protocol attached when arming the timer.
        tag: u64,
    },
}

/// An event scheduled at a virtual time.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// What fires.
    pub kind: EventKind<M>,
}

/// Heap entry; ordered by `(time, seq)` so that events that tie on time fire
/// in insertion order, keeping runs bit-for-bit deterministic.
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic future-event list.
///
/// A thin wrapper over [`BinaryHeap`] that (a) tie-breaks equal timestamps by
/// insertion sequence and (b) refuses (in debug builds) to schedule into the
/// past, which would silently corrupt causality.
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
    now: SimTime,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `kind` to fire at `at`.
    ///
    /// `at` must not precede the current clock; this is a causality bug in
    /// the caller and is rejected with a debug assertion.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some(Event { at: s.at, kind: s.kind })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(t(5), EventKind::Arrival { node: NodeId::new(0) });
        q.schedule(t(1), EventKind::Arrival { node: NodeId::new(1) });
        q.schedule(t(3), EventKind::Arrival { node: NodeId::new(2) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.ticks()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..8u32 {
            q.schedule(t(7), EventKind::Arrival { node: NodeId::new(i) });
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival { node } => node.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(t(4), EventKind::CsExit { node: NodeId::new(0) });
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(t(4)));
        q.pop();
        assert_eq!(q.now(), t(4));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn rejects_past_scheduling() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(t(10), EventKind::CsExit { node: NodeId::new(0) });
        q.pop();
        q.schedule(t(3), EventKind::CsExit { node: NodeId::new(0) });
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(t(2), EventKind::Arrival { node: NodeId::new(0) });
        q.pop();
        // Zero-delay local events at the current instant are legal.
        q.schedule(q.now() + SimDuration::ZERO, EventKind::Arrival { node: NodeId::new(1) });
        assert_eq!(q.pop().unwrap().at, t(2));
    }
}
