//! Failure injection.
//!
//! The paper's system model (§3) assumes reliable channels and no crashes,
//! but makes two resiliency claims worth probing: the algorithm "does not
//! require the FIFO property" (§1) and "the correct operation ... does not
//! depend on any specific node, crash of nodes will not affect the
//! algorithm's execution" (§4, inherited from MCV). Non-FIFO delivery is a
//! delay-model concern ([`crate::DelayModel`]); this module adds the two
//! fault classes beyond the model:
//!
//! * **duplication** — every k-th message is delivered twice (with an
//!   independently sampled delay). The protocol's idempotence guards must
//!   absorb the copies.
//! * **crash-stop** — a node stops processing *anything* (deliveries,
//!   arrivals, even its own CS exit) from a given instant. Messages to it
//!   vanish. This deliberately includes the harsh case of crashing while
//!   holding the CS.

use crate::ids::NodeId;
use crate::time::SimTime;

/// Failure injection plan for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Deliver every `k`-th message twice (`None` = no duplication).
    pub duplicate_every: Option<u64>,
    /// Crash-stop faults: `(node, at)` — the node processes nothing from
    /// `at` (inclusive) onwards.
    pub crashes: Vec<(NodeId, SimTime)>,
}

impl FaultPlan {
    /// The fault-free plan (the paper's model).
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan with duplication only.
    pub fn duplicating(every: u64) -> Self {
        assert!(every >= 1, "duplicate_every must be >= 1");
        FaultPlan { duplicate_every: Some(every), crashes: Vec::new() }
    }

    /// Plan with a single crash.
    pub fn crash(node: NodeId, at: SimTime) -> Self {
        FaultPlan { duplicate_every: None, crashes: vec![(node, at)] }
    }

    /// Whether `node` is crashed at time `now`.
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes.iter().any(|&(n, at)| n == node && now >= at)
    }

    /// Whether the `seq`-th message (1-based) should be duplicated.
    pub fn duplicates(&self, seq: u64) -> bool {
        match self.duplicate_every {
            Some(k) => {
                // `duplicate_every` is pub, so the constructor's validation
                // can be bypassed; fail loudly rather than silently never
                // duplicating (is_multiple_of(0) is false, unlike `% 0`).
                assert!(k > 0, "duplicate_every must be positive");
                seq.is_multiple_of(k)
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let f = FaultPlan::none();
        assert!(!f.is_crashed(NodeId::new(0), SimTime::from_ticks(100)));
        assert!(!f.duplicates(5));
    }

    #[test]
    fn crash_takes_effect_at_time() {
        let f = FaultPlan::crash(NodeId::new(2), SimTime::from_ticks(10));
        assert!(!f.is_crashed(NodeId::new(2), SimTime::from_ticks(9)));
        assert!(f.is_crashed(NodeId::new(2), SimTime::from_ticks(10)));
        assert!(!f.is_crashed(NodeId::new(1), SimTime::from_ticks(99)));
    }

    #[test]
    fn duplication_period() {
        let f = FaultPlan::duplicating(3);
        let dups: Vec<u64> = (1..=9).filter(|&s| f.duplicates(s)).collect();
        assert_eq!(dups, vec![3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_period_rejected() {
        FaultPlan::duplicating(0);
    }
}
