//! Failure injection.
//!
//! The paper's system model (§3) assumes reliable channels and no crashes,
//! but makes two resiliency claims worth probing: the algorithm "does not
//! require the FIFO property" (§1) and "the correct operation ... does not
//! depend on any specific node, crash of nodes will not affect the
//! algorithm's execution" (§4, inherited from MCV). Non-FIFO delivery is a
//! delay-model concern ([`crate::DelayModel`]); this module adds the two
//! fault classes beyond the model:
//!
//! * **duplication** — every k-th message is delivered twice (with an
//!   independently sampled delay). The protocol's idempotence guards must
//!   absorb the copies.
//! * **crash-stop** — a node stops processing *anything* (deliveries,
//!   arrivals, even its own CS exit) from a given instant. Messages to it
//!   vanish. This deliberately includes the harsh case of crashing while
//!   holding the CS.
//! * **crash windows (crash + restart)** — a node is down for a bounded
//!   interval `[down_at, up_at)` and then *restarts*: deliveries during the
//!   window vanish (counted separately from network loss), and at `up_at`
//!   the engine invokes the protocol's
//!   [`crate::MutexProtocol::on_restart`] hook so it can rejoin (RCV
//!   re-initializes its volatile SI from a stable-storage timestamp and
//!   re-announces; protocols without a recovery story keep their pre-crash
//!   state and are documented non-recoverable). A crashed *holder* is
//!   evicted from the safety monitor at `down_at` — the process is dead, so
//!   it cannot be "inside" the CS — and a recovered node re-issues the
//!   request it abandoned mid-crash.
//! * **loss** — every k-th message vanishes in the network (never
//!   delivered). The paper assumes reliable channels, so lossy cells only
//!   demand *safety*; liveness under loss needs the retransmission
//!   extension.
//! * **stragglers** — a slow node: every message to or from it takes a
//!   multiple of the sampled delay. Per-channel delays stay constant under
//!   the constant model, so stragglers preserve FIFO and (unlike the fault
//!   classes above) both safety *and* liveness must survive them.
//!
//! The classes compose: one [`FaultPlan`] may stack loss, duplication,
//! stragglers and crashes in a single run (the scenario matrix does). When
//! one message is both the k-th dropped and the j-th duplicated, the drop
//! wins — the message (and its would-be copy) never leaves the source.

use crate::ids::NodeId;
use crate::time::SimTime;

/// A bounded outage: the node is down during `[down_at, up_at)` and
/// restarts at `up_at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// The node that goes down.
    pub node: NodeId,
    /// First instant (inclusive) at which the node stops processing.
    pub down_at: SimTime,
    /// The instant the node comes back and its
    /// [`crate::MutexProtocol::on_restart`] hook runs.
    pub up_at: SimTime,
}

/// Failure injection plan for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Deliver every `k`-th message twice (`None` = no duplication).
    pub duplicate_every: Option<u64>,
    /// Drop every `k`-th message entirely (`None` = reliable channels).
    pub drop_every: Option<u64>,
    /// Crash-stop faults: `(node, at)` — the node processes nothing from
    /// `at` (inclusive) onwards.
    pub crashes: Vec<(NodeId, SimTime)>,
    /// Bounded outages after which the node restarts (crash windows).
    pub restarts: Vec<CrashWindow>,
    /// Straggler nodes: `(node, factor)` — every message to or from the
    /// node takes `factor ×` the sampled delay. A factor of 1 is inert.
    pub stragglers: Vec<(NodeId, u64)>,
}

impl FaultPlan {
    /// The fault-free plan (the paper's model).
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan with duplication only.
    pub fn duplicating(every: u64) -> Self {
        assert!(every >= 1, "duplicate_every must be >= 1");
        FaultPlan {
            duplicate_every: Some(every),
            ..Self::default()
        }
    }

    /// Plan with message loss only.
    pub fn losing(every: u64) -> Self {
        assert!(every >= 1, "drop_every must be >= 1");
        FaultPlan {
            drop_every: Some(every),
            ..Self::default()
        }
    }

    /// Plan with a single crash.
    pub fn crash(node: NodeId, at: SimTime) -> Self {
        FaultPlan {
            crashes: vec![(node, at)],
            ..Self::default()
        }
    }

    /// Plan with a single straggler node.
    pub fn straggler(node: NodeId, factor: u64) -> Self {
        assert!(factor >= 1, "straggler factor must be >= 1");
        FaultPlan {
            stragglers: vec![(node, factor)],
            ..Self::default()
        }
    }

    /// Adds message loss to this plan (builder-style, for stacking).
    pub fn with_loss(mut self, every: u64) -> Self {
        assert!(every >= 1, "drop_every must be >= 1");
        self.drop_every = Some(every);
        self
    }

    /// Adds duplication to this plan (builder-style, for stacking).
    pub fn with_duplication(mut self, every: u64) -> Self {
        assert!(every >= 1, "duplicate_every must be >= 1");
        self.duplicate_every = Some(every);
        self
    }

    /// Adds a straggler to this plan (builder-style, for stacking).
    pub fn with_straggler(mut self, node: NodeId, factor: u64) -> Self {
        assert!(factor >= 1, "straggler factor must be >= 1");
        self.stragglers.push((node, factor));
        self
    }

    /// Adds a crash to this plan (builder-style, for stacking).
    pub fn with_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// Plan with a single crash window: down at `down_at`, restarted at
    /// `up_at`.
    pub fn crash_restart(node: NodeId, down_at: SimTime, up_at: SimTime) -> Self {
        FaultPlan::none().with_crash_restart(node, down_at, up_at)
    }

    /// Adds a bounded outage (builder-style): the node is down during
    /// `[down_at, up_at)` and restarts at `up_at`.
    pub fn with_crash_restart(mut self, node: NodeId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(down_at < up_at, "crash window must end after it starts");
        self.restarts.push(CrashWindow {
            node,
            down_at,
            up_at,
        });
        self
    }

    /// Whether `node` is crashed at time `now`.
    ///
    /// Linear in the fault list; the engine precomputes a per-node schedule
    /// at construction so its hot path never calls this.
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes.iter().any(|&(n, at)| n == node && now >= at)
            || self
                .restarts
                .iter()
                .any(|w| w.node == node && now >= w.down_at && now < w.up_at)
    }

    /// Whether the `seq`-th message (1-based) should be duplicated.
    pub fn duplicates(&self, seq: u64) -> bool {
        match self.duplicate_every {
            Some(k) => {
                // `duplicate_every` is pub, so the constructor's validation
                // can be bypassed; fail loudly rather than silently never
                // duplicating (is_multiple_of(0) is false, unlike `% 0`).
                assert!(k > 0, "duplicate_every must be positive");
                seq.is_multiple_of(k)
            }
            None => false,
        }
    }

    /// Whether the `seq`-th message (1-based) should be dropped.
    pub fn drops(&self, seq: u64) -> bool {
        match self.drop_every {
            Some(k) => {
                assert!(k > 0, "drop_every must be positive");
                seq.is_multiple_of(k)
            }
            None => false,
        }
    }

    /// Delay multiplier for a `from → to` message: the largest straggler
    /// factor among the two endpoints (1 when neither straggles). Taking
    /// the max — not the product — keeps a self-loop through one straggler
    /// from compounding.
    pub fn delay_factor(&self, from: NodeId, to: NodeId) -> u64 {
        self.stragglers
            .iter()
            .filter(|&&(n, _)| n == from || n == to)
            .map(|&(_, f)| f)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Whether this plan can prevent requests from completing: lost
    /// messages and permanently crashed nodes break the reliable-channel
    /// assumption every algorithm's liveness argument rests on. Duplication
    /// and stragglers only stress, never starve. Crash *windows* are
    /// deliberately excluded: whether a restarting node threatens liveness
    /// depends on the protocol having a recovery story, which the scenario
    /// layer decides per algorithm.
    pub fn threatens_liveness(&self) -> bool {
        self.drop_every.is_some() || !self.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let f = FaultPlan::none();
        assert!(!f.is_crashed(NodeId::new(0), SimTime::from_ticks(100)));
        assert!(!f.duplicates(5));
    }

    #[test]
    fn crash_takes_effect_at_time() {
        let f = FaultPlan::crash(NodeId::new(2), SimTime::from_ticks(10));
        assert!(!f.is_crashed(NodeId::new(2), SimTime::from_ticks(9)));
        assert!(f.is_crashed(NodeId::new(2), SimTime::from_ticks(10)));
        assert!(!f.is_crashed(NodeId::new(1), SimTime::from_ticks(99)));
    }

    #[test]
    fn duplication_period() {
        let f = FaultPlan::duplicating(3);
        let dups: Vec<u64> = (1..=9).filter(|&s| f.duplicates(s)).collect();
        assert_eq!(dups, vec![3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_period_rejected() {
        FaultPlan::duplicating(0);
    }

    #[test]
    fn loss_period() {
        let f = FaultPlan::losing(4);
        let drops: Vec<u64> = (1..=12).filter(|&s| f.drops(s)).collect();
        assert_eq!(drops, vec![4, 8, 12]);
        assert!(!f.duplicates(4), "loss does not imply duplication");
        assert!(f.threatens_liveness());
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_loss_period_rejected() {
        FaultPlan::losing(0);
    }

    #[test]
    fn straggler_factor_is_endpoint_max() {
        let f = FaultPlan::straggler(NodeId::new(1), 8).with_straggler(NodeId::new(2), 3);
        assert_eq!(f.delay_factor(NodeId::new(0), NodeId::new(3)), 1);
        assert_eq!(f.delay_factor(NodeId::new(1), NodeId::new(0)), 8);
        assert_eq!(f.delay_factor(NodeId::new(0), NodeId::new(2)), 3);
        assert_eq!(
            f.delay_factor(NodeId::new(1), NodeId::new(2)),
            8,
            "max, not product"
        );
        assert!(!f.threatens_liveness(), "stragglers are slow, not dead");
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn zero_straggler_factor_rejected() {
        FaultPlan::straggler(NodeId::new(0), 0);
    }

    #[test]
    fn builder_stacks_all_classes() {
        let f = FaultPlan::losing(50)
            .with_duplication(7)
            .with_straggler(NodeId::new(0), 4)
            .with_crash(NodeId::new(5), SimTime::from_ticks(90));
        assert!(f.drops(100));
        assert!(f.duplicates(49));
        assert_eq!(f.delay_factor(NodeId::new(0), NodeId::new(1)), 4);
        assert!(f.is_crashed(NodeId::new(5), SimTime::from_ticks(90)));
        assert!(f.threatens_liveness());
    }

    #[test]
    fn crash_window_is_bounded() {
        let f = FaultPlan::crash_restart(
            NodeId::new(1),
            SimTime::from_ticks(10),
            SimTime::from_ticks(20),
        );
        assert!(!f.is_crashed(NodeId::new(1), SimTime::from_ticks(9)));
        assert!(f.is_crashed(NodeId::new(1), SimTime::from_ticks(10)));
        assert!(f.is_crashed(NodeId::new(1), SimTime::from_ticks(19)));
        assert!(
            !f.is_crashed(NodeId::new(1), SimTime::from_ticks(20)),
            "the node is back at up_at"
        );
        assert!(!f.is_crashed(NodeId::new(0), SimTime::from_ticks(15)));
        assert!(
            !f.threatens_liveness(),
            "a window alone does not decide liveness; the scenario layer does"
        );
    }

    #[test]
    #[should_panic(expected = "window must end after it starts")]
    fn empty_crash_window_rejected() {
        FaultPlan::crash_restart(
            NodeId::new(0),
            SimTime::from_ticks(5),
            SimTime::from_ticks(5),
        );
    }

    #[test]
    fn default_plan_is_fully_inert() {
        let f = FaultPlan::none();
        assert!(!f.drops(1));
        assert_eq!(f.delay_factor(NodeId::new(0), NodeId::new(1)), 1);
        assert!(!f.threatens_liveness());
    }
}
