//! The discrete-event simulation engine.
//!
//! Drives `N` protocol state machines over a virtual network: pops events in
//! timestamp order, hands them to the owning node, and turns the node's
//! intents (sends, CS entry) back into future events. The engine is fully
//! deterministic for a given `(SimConfig, workload)` pair — delays and
//! protocol randomness come from seeded per-purpose RNG streams, and ties in
//! the event queue fire in insertion order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::delay::DelayModel;
use crate::event::{EventKind, EventQueue};
use crate::faults::FaultPlan;
use crate::ids::NodeId;
use crate::metrics::SimMetrics;
use crate::monitor::{SafetyMonitor, Violation};
use crate::protocol::{Ctx, MutexProtocol, ProtocolMessage, RestartOutcome};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use crate::workload::{ArrivalSink, Workload};

/// Engine parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of nodes, `N`.
    pub n: usize,
    /// Message propagation delay model (`Tn`).
    pub delay: DelayModel,
    /// CS execution time (`Tc`).
    pub cs_duration: SimDuration,
    /// Master seed; every stream (network delays, per-node protocol
    /// randomness, workload) is derived from it.
    pub seed: u64,
    /// Hard cap on processed events, to turn a livelock into a test failure
    /// instead of a hang.
    pub max_events: u64,
    /// Panic the moment mutual exclusion is violated (tests) instead of
    /// recording and continuing (surveys).
    pub panic_on_violation: bool,
    /// Failure injection (duplication, crash-stop). Defaults to none — the
    /// paper's reliable model.
    pub faults: FaultPlan,
    /// Keep a ring of the last this-many events for post-mortem narration
    /// (0 = off; tracing formats every message, so leave it off in
    /// experiments).
    pub trace_capacity: usize,
}

impl SimConfig {
    /// The paper's settings: `Tn = 5`, `Tc = 10`, constant delay.
    pub fn paper(n: usize, seed: u64) -> Self {
        SimConfig {
            n,
            delay: DelayModel::paper_constant(),
            cs_duration: SimDuration::from_ticks(10),
            seed,
            max_events: 200_000_000,
            panic_on_violation: true,
            faults: FaultPlan::none(),
            trace_capacity: 0,
        }
    }

    /// Paper settings but with jittered (non-FIFO) delivery.
    pub fn paper_non_fifo(n: usize, seed: u64) -> Self {
        SimConfig {
            delay: DelayModel::paper_jittered(),
            ..Self::paper(n, seed)
        }
    }
}

/// Outcome of one simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Clock value when the run ended.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// True if the event queue drained while requests were still
    /// outstanding — i.e. the system deadlocked/starved.
    pub deadlocked: bool,
    /// True if the run stopped because `max_events` was hit.
    pub truncated: bool,
    /// All request / message counters.
    pub metrics: SimMetrics,
    /// Mutual exclusion violations (empty ⇔ safe).
    pub violations: Vec<Violation>,
    /// Raw exit→entry gaps for the synchronization delay metric.
    pub sync_gaps: Vec<SimDuration>,
    /// Total CS entries observed by the monitor.
    pub cs_entries: u64,
    /// Execution trace (empty unless `trace_capacity` was set).
    pub trace: Trace,
}

impl SimReport {
    /// Whether mutual exclusion held.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether every issued request ran to completion.
    pub fn all_completed(&self) -> bool {
        !self.deadlocked && !self.truncated && self.metrics.outstanding() == 0
    }
}

/// The engine itself, generic over the protocol under test.
pub struct Engine<P: MutexProtocol, W: Workload> {
    cfg: SimConfig,
    nodes: Vec<P>,
    node_rngs: Vec<SmallRng>,
    queue: EventQueue<P::Message>,
    net_rng: SmallRng,
    wl_rng: SmallRng,
    monitor: SafetyMonitor,
    metrics: SimMetrics,
    workload: W,
    sink: ArrivalSink,
    in_cs: Vec<bool>,
    /// Per-node CS generation, bumped at every grant and at crash
    /// eviction; lets stale `CsExit` events (from a hold the crash killed)
    /// be recognized and dropped.
    cs_epoch: Vec<u64>,
    /// Per-node crash schedule, precomputed from the fault plan at
    /// construction: sorted `(down, up)` intervals (`up = u64::MAX` ticks
    /// encodes crash-stop). Fault-free and single-crash runs pay an O(1)
    /// emptiness/first-interval check on the hot paths instead of the
    /// fault plan's linear scan per event.
    crash_sched: Vec<Vec<(SimTime, SimTime)>>,
    /// Per-node flag: a request was outstanding when the node crashed and
    /// was abandoned; re-issued at restart if the protocol recovers.
    crash_aborted: Vec<bool>,
    events: u64,
    trace: Trace,
    /// Reusable dispatch scratch: a handler's outgoing messages. Drained
    /// before `dispatch` returns (or recurses into `grant_cs`), so the
    /// event loop allocates nothing per event in steady state.
    outbox: Vec<(NodeId, <P as MutexProtocol>::Message)>,
    /// Reusable dispatch scratch: a handler's armed timers.
    timers: Vec<(SimDuration, u64)>,
}

impl<P: MutexProtocol, W: Workload> Engine<P, W> {
    /// Builds an engine; `make_node(id, n)` constructs each protocol node.
    pub fn new(cfg: SimConfig, workload: W, mut make_node: impl FnMut(NodeId, usize) -> P) -> Self {
        assert!(cfg.n >= 1, "need at least one node");
        let mut seeder = SmallRng::seed_from_u64(cfg.seed);
        let node_rngs = (0..cfg.n)
            .map(|_| SmallRng::seed_from_u64(seeder.gen()))
            .collect::<Vec<_>>();
        let net_rng = SmallRng::seed_from_u64(seeder.gen());
        let wl_rng = SmallRng::seed_from_u64(seeder.gen());
        let nodes = NodeId::all(cfg.n).map(|id| make_node(id, cfg.n)).collect();
        // Size the calendar queue's O(1) window to the common scheduling
        // distances: message delays (≤ Tn_max) and CS exits (Tc). Timers
        // and far-future arrivals overflow to the heap, which is correct,
        // just not O(1).
        let horizon = cfg.delay.max_ticks().max(cfg.cs_duration.ticks());
        // Precompute the per-node crash schedule so the per-event down
        // check is O(intervals of that node) — O(1) for the typical zero-
        // or one-crash plans — instead of a scan over the whole fault list.
        let forever = SimTime::from_ticks(u64::MAX);
        let mut crash_sched: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); cfg.n];
        for &(node, at) in &cfg.faults.crashes {
            assert!(node.index() < cfg.n, "crash plan names unknown {node:?}");
            crash_sched[node.index()].push((at, forever));
        }
        for w in &cfg.faults.restarts {
            assert!(
                w.node.index() < cfg.n,
                "crash window names unknown {:?}",
                w.node
            );
            crash_sched[w.node.index()].push((w.down_at, w.up_at));
        }
        for sched in &mut crash_sched {
            sched.sort_unstable();
        }
        let mut queue = EventQueue::with_horizon(SimDuration::from_ticks(horizon));
        // Crash windows are driven by explicit events (eviction, restart
        // hook, request re-issue). Permanent crash-stops stay purely
        // passive — exactly the pre-window engine behavior, so legacy
        // fault plans keep bit-identical event counts and RNG streams.
        for w in &cfg.faults.restarts {
            queue.schedule(w.down_at, EventKind::Crash { node: w.node });
            queue.schedule(w.up_at, EventKind::Restart { node: w.node });
        }
        Engine {
            trace: Trace::with_capacity(cfg.trace_capacity),
            in_cs: vec![false; cfg.n],
            cs_epoch: vec![0; cfg.n],
            crash_sched,
            crash_aborted: vec![false; cfg.n],
            nodes,
            node_rngs,
            queue,
            net_rng,
            wl_rng,
            monitor: SafetyMonitor::new(),
            metrics: SimMetrics::new(),
            workload,
            sink: ArrivalSink::new(),
            events: 0,
            cfg,
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Whether `node` is inside a crash interval at `now` (precomputed
    /// schedule; O(1) for fault-free and single-crash plans).
    #[inline]
    fn node_down(&self, node: NodeId, now: SimTime) -> bool {
        self.crash_sched[node.index()]
            .iter()
            .any(|&(down, up)| now >= down && now < up)
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> SimReport {
        self.run_collecting().0
    }

    /// Runs the simulation and also hands back the final protocol states,
    /// for white-box invariant checks.
    pub fn run_collecting(mut self) -> (SimReport, Vec<P>) {
        self.workload
            .init(self.cfg.n, &mut self.wl_rng, &mut self.sink);
        self.flush_arrivals();

        let mut truncated = false;
        while let Some(ev) = self.queue.pop() {
            self.events += 1;
            if self.events > self.cfg.max_events {
                truncated = true;
                break;
            }
            let now = ev.at;
            match ev.kind {
                EventKind::Arrival { node } => self.handle_arrival(node, now),
                EventKind::Deliver { from, to, msg } => self.handle_deliver(from, to, msg, now),
                EventKind::CsExit { node, epoch } => self.handle_cs_exit(node, epoch, now),
                EventKind::Timer { node, tag } => self.handle_timer(node, tag, now),
                EventKind::Crash { node } => self.handle_crash(node, now),
                EventKind::Restart { node } => self.handle_restart(node, now),
            }
        }

        let deadlocked = !truncated && self.metrics.outstanding() > 0;
        let end_time = self.queue.now();
        // Move (not clone) the monitor's accumulated vectors into the report.
        let parts = self.monitor.into_parts();
        let report = SimReport {
            end_time,
            events: self.events,
            deadlocked,
            truncated,
            violations: parts.violations,
            sync_gaps: parts.sync_gaps,
            cs_entries: parts.entries,
            metrics: self.metrics,
            trace: self.trace,
        };
        (report, self.nodes)
    }

    fn flush_arrivals(&mut self) {
        // The sink and the queue are disjoint fields, so the drain feeds
        // the queue directly — no intermediate collect.
        let n = self.cfg.n;
        for (at, node) in self.sink.drain() {
            assert!(node.index() < n, "workload scheduled unknown node {node:?}");
            self.queue.schedule(at, EventKind::Arrival { node });
        }
    }

    fn handle_arrival(&mut self, node: NodeId, now: SimTime) {
        if self.node_down(node, now) {
            return; // a crashed node issues nothing
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Arrival { at: now, node });
        }
        assert!(
            !self.metrics.has_outstanding(node),
            "workload violated the one-outstanding-request rule for {node:?}"
        );
        self.metrics.request_issued(node, now);
        self.dispatch(node, now, |p, ctx| p.on_request(ctx));
    }

    fn handle_deliver(&mut self, from: NodeId, to: NodeId, msg: P::Message, now: SimTime) {
        if self.node_down(to, now) {
            self.metrics.message_dropped();
            if self.trace.enabled() {
                self.trace.record(TraceEvent::Dropped { at: now, to });
            }
            return;
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Deliver {
                at: now,
                from,
                to,
                kind: msg.kind(),
            });
        }
        self.dispatch(to, now, |p, ctx| p.on_message(from, msg, ctx));
    }

    fn handle_cs_exit(&mut self, node: NodeId, epoch: u64, now: SimTime) {
        if self.node_down(node, now) {
            // Crashed while holding the CS (crash-stop): the node never
            // releases; the monitor keeps it as occupant and successors
            // starve — the honest consequence, surfaced via `deadlocked`.
            // (Crash *windows* instead evict the holder at `down_at`.)
            return;
        }
        if epoch != self.cs_epoch[node.index()] {
            // The hold this exit belonged to was killed by a crash
            // eviction; the node may even be back inside the CS for a
            // fresh request by now. Either way this exit is stale.
            return;
        }
        debug_assert!(self.in_cs[node.index()], "CsExit for a node not in the CS");
        if self.trace.enabled() {
            self.trace.record(TraceEvent::CsExit { at: now, node });
        }
        self.in_cs[node.index()] = false;
        self.monitor.exit(node, now);
        self.metrics.cs_exited(node, now);
        self.dispatch(node, now, |p, ctx| p.on_cs_released(ctx));
        self.workload
            .on_complete(node, now, &mut self.wl_rng, &mut self.sink);
        self.flush_arrivals();
    }

    fn handle_timer(&mut self, node: NodeId, tag: u64, now: SimTime) {
        if self.node_down(node, now) {
            return;
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Timer { at: now, node, tag });
        }
        self.dispatch(node, now, |p, ctx| p.on_timer(tag, ctx));
    }

    /// Start of a crash window: the node dies *now*. If it held the CS it
    /// is evicted (a dead process occupies nothing) and its pending exit is
    /// invalidated; an outstanding request is abandoned and remembered for
    /// re-issue at restart.
    fn handle_crash(&mut self, node: NodeId, now: SimTime) {
        self.metrics.node_crashed();
        let held = self.in_cs[node.index()];
        if held {
            self.in_cs[node.index()] = false;
            self.cs_epoch[node.index()] += 1;
            self.monitor.evict(node);
        }
        self.crash_aborted[node.index()] = self.metrics.request_aborted(node);
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Crashed {
                at: now,
                node,
                held_cs: held,
            });
        }
    }

    /// End of a crash window: run the protocol's restart hook and act on
    /// its outcome — re-issue the interrupted request for a node that
    /// rejoined idle, or just re-open the request bookkeeping for one that
    /// resumed the request internally (write-ahead recovery).
    fn handle_restart(&mut self, node: NodeId, now: SimTime) {
        self.metrics.node_restarted();
        let mut outcome = RestartOutcome::KeptState;
        self.dispatch(node, now, |p, ctx| outcome = p.on_restart(ctx));
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Restarted {
                at: now,
                node,
                recovered: outcome.recovered(),
            });
        }
        let interrupted = std::mem::take(&mut self.crash_aborted[node.index()]);
        match outcome {
            RestartOutcome::KeptState => {}
            RestartOutcome::RejoinedIdle => {
                if interrupted {
                    self.queue.schedule(now, EventKind::Arrival { node });
                }
            }
            RestartOutcome::ResumedRequest => {
                // The protocol re-adopted its interrupted request; track it
                // as a fresh lifecycle starting now (down time is recovery,
                // not protocol wait, so it must not pollute response times).
                if interrupted {
                    self.metrics.request_resumed(node, now);
                }
            }
        }
    }

    /// Runs one protocol handler and materializes its intents.
    ///
    /// The handler's sends/timers land in the engine-owned scratch buffers
    /// (`self.outbox`/`self.timers`), which are fully drained before this
    /// returns — so the only recursion (`grant_cs` → `on_cs_granted`) sees
    /// them empty and can reuse them, and steady-state dispatch performs no
    /// allocation at all.
    fn dispatch(
        &mut self,
        node: NodeId,
        now: SimTime,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Message>),
    ) {
        debug_assert!(
            self.outbox.is_empty() && self.timers.is_empty(),
            "dispatch re-entered with undrained scratch buffers"
        );
        let mut enter = false;
        {
            let idx = node.index();
            let mut ctx = Ctx::new(
                node,
                now,
                &mut self.node_rngs[idx],
                &mut self.outbox,
                &mut enter,
                &mut self.timers,
            );
            f(&mut self.nodes[idx], &mut ctx);
        }
        for (delay, tag) in self.timers.drain(..) {
            self.queue
                .schedule(now + delay, EventKind::Timer { node, tag });
        }
        for (to, msg) in self.outbox.drain(..) {
            assert!(
                to.index() < self.cfg.n,
                "{node:?} sent to unknown node {to:?}"
            );
            if self.trace.enabled() {
                self.trace.record(TraceEvent::Send {
                    at: now,
                    from: node,
                    to,
                    kind: msg.kind(),
                    detail: format!("{msg:?}"),
                });
            }
            {
                let _p = crate::profile::probe(crate::profile::ProbePhase::Metrics);
                self.metrics.message_sent(msg.kind(), msg.wire_size());
            }
            // Loss first, before any delay is sampled: a lost message (and
            // its would-be duplicate) consumes no network randomness, so a
            // lossless plan leaves the RNG streams bit-identical to the
            // pre-loss engine.
            if self.cfg.faults.drops(self.metrics.messages_sent()) {
                self.metrics.message_lost();
                if self.trace.enabled() {
                    self.trace.record(TraceEvent::Lost {
                        at: now,
                        from: node,
                        to,
                    });
                }
                continue;
            }
            // Straggler endpoints stretch the sampled delay by a constant
            // factor (1 = inert), preserving per-channel FIFO under the
            // constant model.
            let factor = self.cfg.faults.delay_factor(node, to);
            let stretch = |d: SimDuration| SimDuration::from_ticks(d.ticks() * factor);
            let d = stretch(self.cfg.delay.sample(&mut self.net_rng));
            if self.cfg.faults.duplicates(self.metrics.messages_sent()) {
                let d2 = stretch(self.cfg.delay.sample(&mut self.net_rng));
                self.queue.schedule(
                    now + d2,
                    EventKind::Deliver {
                        from: node,
                        to,
                        msg: msg.clone(),
                    },
                );
            }
            self.queue.schedule(
                now + d,
                EventKind::Deliver {
                    from: node,
                    to,
                    msg,
                },
            );
        }
        if enter {
            self.grant_cs(node, now);
        }
    }

    fn grant_cs(&mut self, node: NodeId, now: SimTime) {
        assert!(
            !self.in_cs[node.index()],
            "{node:?} entered the CS it already holds"
        );
        self.monitor.enter(node, now);
        if self.cfg.panic_on_violation && !self.monitor.is_safe() {
            let v = self.monitor.violations().last().unwrap();
            panic!(
                "MUTUAL EXCLUSION VIOLATED at {:?}: {:?} entered while {:?} was inside",
                v.at, v.intruder, v.holder
            );
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent::CsEnter { at: now, node });
        }
        self.in_cs[node.index()] = true;
        self.metrics.cs_entered(node, now);
        let exit_at = now + self.cfg.cs_duration;
        self.cs_epoch[node.index()] += 1;
        let epoch = self.cs_epoch[node.index()];
        self.queue
            .schedule(exit_at, EventKind::CsExit { node, epoch });
        self.dispatch(node, now, |p, ctx| p.on_cs_granted(ctx));
    }

    /// Read-only access to a node, for white-box assertions in tests.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }
}

#[cfg(test)]
mod tests {
    //! Engine-level tests use a deliberately trivial "centralized permission"
    //! protocol: node 0 is the coordinator holding a queue. This exercises
    //! every engine path without depending on the real algorithms.

    use super::*;
    use crate::protocol::ProtocolMessage;
    use crate::workload::{BurstOnce, FixedTrace};
    use std::collections::VecDeque;

    #[derive(Clone, Debug)]
    enum CMsg {
        Ask,
        Grant,
        Done,
    }

    impl ProtocolMessage for CMsg {
        fn kind(&self) -> &'static str {
            match self {
                CMsg::Ask => "ASK",
                CMsg::Grant => "GRANT",
                CMsg::Done => "DONE",
            }
        }
    }

    /// Minimal centralized mutex: everyone asks node 0; node 0 serializes.
    struct Central {
        me: NodeId,
        queue: VecDeque<NodeId>,
        busy: bool,
    }

    impl Central {
        fn new(me: NodeId) -> Self {
            Central {
                me,
                queue: VecDeque::new(),
                busy: false,
            }
        }

        fn coordinator(&self) -> bool {
            self.me == NodeId::new(0)
        }

        fn pump(&mut self, ctx: &mut Ctx<'_, CMsg>) {
            if !self.busy {
                if let Some(next) = self.queue.pop_front() {
                    self.busy = true;
                    if next == self.me {
                        ctx.enter_cs();
                    } else {
                        ctx.send(next, CMsg::Grant);
                    }
                }
            }
        }
    }

    impl MutexProtocol for Central {
        type Message = CMsg;

        fn name(&self) -> &'static str {
            "central-test"
        }

        fn on_request(&mut self, ctx: &mut Ctx<'_, CMsg>) {
            if self.coordinator() {
                let me = self.me;
                self.queue.push_back(me);
                self.pump(ctx);
            } else {
                ctx.send(NodeId::new(0), CMsg::Ask);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: CMsg, ctx: &mut Ctx<'_, CMsg>) {
            match msg {
                CMsg::Ask => {
                    self.queue.push_back(from);
                    self.pump(ctx);
                }
                CMsg::Grant => ctx.enter_cs(),
                CMsg::Done => {
                    self.busy = false;
                    self.pump(ctx);
                }
            }
        }

        fn on_cs_released(&mut self, ctx: &mut Ctx<'_, CMsg>) {
            if self.coordinator() {
                self.busy = false;
                self.pump(ctx);
            } else {
                ctx.send(NodeId::new(0), CMsg::Done);
            }
        }
    }

    fn run_burst(n: usize, seed: u64, delay: DelayModel) -> SimReport {
        let mut cfg = SimConfig::paper(n, seed);
        cfg.delay = delay;
        Engine::new(cfg, BurstOnce, |id, _n| Central::new(id)).run()
    }

    #[test]
    fn burst_completes_all_requests() {
        let r = run_burst(8, 42, DelayModel::paper_constant());
        assert!(r.is_safe());
        assert!(r.all_completed());
        assert_eq!(r.metrics.completed(), 8);
        assert_eq!(r.cs_entries, 8);
        assert!(!r.deadlocked);
    }

    #[test]
    fn non_fifo_delivery_still_completes() {
        let r = run_burst(8, 7, DelayModel::paper_jittered());
        assert!(r.is_safe());
        assert_eq!(r.metrics.completed(), 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_burst(10, 123, DelayModel::paper_jittered());
        let b = run_burst(10, 123, DelayModel::paper_jittered());
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics.messages_sent(), b.metrics.messages_sent());
        assert_eq!(a.metrics.response_time(), b.metrics.response_time());
    }

    #[test]
    fn different_seeds_diverge_under_jitter() {
        let a = run_burst(10, 1, DelayModel::paper_jittered());
        let b = run_burst(10, 2, DelayModel::paper_jittered());
        // With 10 competing nodes and jittered delays some observable
        // quantity differs with overwhelming probability. The central test
        // protocol sends a fixed message count and end times quantize to
        // ticks, so the per-request response-time distribution is the
        // discriminating observable.
        assert!(
            a.end_time != b.end_time
                || a.metrics.messages_sent() != b.metrics.messages_sent()
                || a.metrics.response_time().mean != b.metrics.response_time().mean,
            "two different seeds produced identical runs"
        );
    }

    #[test]
    fn single_node_system() {
        let r = run_burst(1, 0, DelayModel::paper_constant());
        assert!(r.all_completed());
        assert_eq!(r.metrics.completed(), 1);
        assert_eq!(r.metrics.messages_sent(), 0);
        // Coordinator enters at t=0 and leaves at Tc.
        assert_eq!(r.end_time.ticks(), 10);
    }

    #[test]
    fn fixed_trace_sequencing() {
        let trace = FixedTrace::new(vec![
            (SimTime::from_ticks(0), NodeId::new(1)),
            (SimTime::from_ticks(100), NodeId::new(2)),
        ]);
        let cfg = SimConfig::paper(3, 9);
        let r = Engine::new(cfg, trace, |id, _| Central::new(id)).run();
        assert!(r.all_completed());
        assert_eq!(r.metrics.completed(), 2);
        // Light load: second request waited for nobody.
        let rt = r.metrics.response_time();
        assert_eq!(rt.count, 2);
        assert_eq!(rt.mean, 10.0); // Ask(5) + Grant(5) each
    }

    #[test]
    fn sync_gap_under_saturation_is_positive() {
        let r = run_burst(6, 3, DelayModel::paper_constant());
        assert!(!r.sync_gaps.is_empty());
        // Central protocol: exit -> Done(5) -> Grant(5) = 10tu gaps for
        // non-coordinator handoffs.
        assert!(r.sync_gaps.iter().all(|g| g.ticks() <= 10));
    }

    #[test]
    fn nme_matches_hand_count() {
        // 2 nodes: node1 asks (1), grant (1), done (1); node0 requests
        // locally (0 messages). Total 3 messages / 2 CS executions.
        let r = run_burst(2, 5, DelayModel::paper_constant());
        assert_eq!(r.metrics.messages_sent(), 3);
        assert_eq!(r.metrics.nme(), Some(1.5));
    }

    #[test]
    fn message_loss_is_counted_and_stays_safe() {
        // Central protocol with lost messages: the protocol wedges (no
        // retransmission), but the run terminates, reports the stall
        // honestly and never violates mutual exclusion.
        let mut cfg = SimConfig::paper(8, 42);
        cfg.faults = FaultPlan::losing(3);
        let r = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert!(r.is_safe());
        assert!(r.metrics.messages_lost() > 0);
        assert!(!r.truncated);
        assert!(
            r.deadlocked || r.metrics.completed() == 8,
            "loss must either stall (honestly reported) or be survived"
        );
    }

    #[test]
    fn straggler_slows_but_never_starves() {
        let fast = run_burst(8, 42, DelayModel::paper_constant());
        let mut cfg = SimConfig::paper(8, 42);
        cfg.faults = FaultPlan::straggler(NodeId::new(0), 10);
        let slow = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert!(slow.is_safe());
        assert!(slow.all_completed(), "a slow node is not a dead node");
        assert_eq!(slow.metrics.completed(), 8);
        assert!(
            slow.end_time > fast.end_time,
            "a 10x straggler coordinator must stretch the run ({} vs {})",
            slow.end_time,
            fast.end_time
        );
    }

    #[test]
    fn unit_straggler_factor_is_bit_identical() {
        let plain = run_burst(10, 7, DelayModel::paper_jittered());
        let mut cfg = SimConfig::paper(10, 7);
        cfg.delay = DelayModel::paper_jittered();
        cfg.faults = FaultPlan::straggler(NodeId::new(3), 1);
        let with = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert_eq!(plain.end_time, with.end_time);
        assert_eq!(plain.events, with.events);
        assert_eq!(plain.metrics.messages_sent(), with.metrics.messages_sent());
    }

    #[test]
    fn stacked_faults_compose_without_panic() {
        // No duplication here: the toy Central protocol has no idempotence
        // guards (a doubled Grant would re-enter the CS); duplication
        // stacking on the real algorithms is covered by the fault battery
        // and the scenario-matrix proptest.
        let mut cfg = SimConfig::paper(10, 3);
        cfg.delay = DelayModel::paper_jittered();
        cfg.faults = FaultPlan::losing(11)
            .with_straggler(NodeId::new(1), 4)
            .with_crash(NodeId::new(9), SimTime::from_ticks(500));
        let r = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert!(r.is_safe());
        assert!(!r.truncated, "stacked faults must still drain the queue");
    }

    #[test]
    fn crash_window_after_the_run_changes_nothing_but_the_clock() {
        // A window entirely beyond the workload's natural end: the run's
        // protocol behavior (messages, completions) must be bit-identical
        // to the fault-free run; only the clock runs on to the restart
        // event and the two window events are counted.
        let plain = run_burst(8, 42, DelayModel::paper_jittered());
        let mut cfg = SimConfig::paper(8, 42);
        cfg.delay = DelayModel::paper_jittered();
        cfg.faults = FaultPlan::crash_restart(
            NodeId::new(3),
            SimTime::from_ticks(1_000_000),
            SimTime::from_ticks(1_000_100),
        );
        let windowed = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert_eq!(windowed.metrics.completed(), plain.metrics.completed());
        assert_eq!(
            windowed.metrics.messages_sent(),
            plain.metrics.messages_sent()
        );
        assert_eq!(windowed.events, plain.events + 2);
        assert_eq!(windowed.metrics.crashes(), 1);
        assert_eq!(windowed.metrics.restarts(), 1);
        assert!(windowed.is_safe());
    }

    #[test]
    fn crashed_holder_in_window_is_evicted_not_an_occupant() {
        // Crash the coordinator inside its own CS hold. Central has no
        // recovery (`on_restart` default), so the system wedges — but the
        // monitor must not keep a dead process as occupant, the hold's
        // pending CsExit must not fire after the restart, and the crashed
        // node's own request must be retired as aborted.
        let mut cfg = SimConfig::paper(4, 5);
        cfg.trace_capacity = 256;
        // Coordinator (node 0) enters at t=0, exits at Tc=10: crash at 4.
        cfg.faults = FaultPlan::crash_restart(
            NodeId::new(0),
            SimTime::from_ticks(4),
            SimTime::from_ticks(40),
        );
        let r = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert!(r.is_safe());
        assert!(r.deadlocked, "no recovery: the stall is reported honestly");
        assert_eq!(r.metrics.requests_aborted(), 1);
        assert_eq!(r.metrics.completed(), 0);
        let text = r.trace.render();
        assert!(text.contains("N0 CRASHES while holding the CS"), "{text}");
        assert!(text.contains("N0 RESTARTS with pre-crash state"), "{text}");
    }

    #[test]
    fn report_flags_truncation() {
        let mut cfg = SimConfig::paper(8, 11);
        cfg.max_events = 3;
        let r = Engine::new(cfg, BurstOnce, |id, _| Central::new(id)).run();
        assert!(r.truncated);
        assert!(!r.all_completed());
    }
}
