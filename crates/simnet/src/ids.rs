//! Node identifiers.

use core::fmt;

/// Identifier of a node in the distributed system.
///
/// The paper numbers the `N` nodes `N0 .. N(N-1)`; node ids double as tie
/// breakers in the RCV ranking (smaller id wins), so the ordering of
/// `NodeId` is semantically meaningful.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds a node id from its index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw numeric id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize` index into per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all node ids of a system of `n` nodes.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = NodeId::all(3).collect();
        assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId::new(7).index(), 7);
        assert_eq!(NodeId::from(9u32).raw(), 9);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", NodeId::new(4)), "N4");
    }
}
