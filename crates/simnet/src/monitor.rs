//! Global safety monitor.
//!
//! The monitor is the simulation's omniscient observer: it sees every CS
//! entry and exit and checks the paper's Theorem 1 (mutual exclusion)
//! externally, independent of any protocol bookkeeping. It also records the
//! raw material for the **synchronization delay** metric (§6.1.2): the gap
//! between one CS exit and the next CS entry.

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// A recorded mutual exclusion violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// When the second node entered.
    pub at: SimTime,
    /// Who already held the CS.
    pub holder: NodeId,
    /// Who entered on top of them.
    pub intruder: NodeId,
}

/// Everything a [`SafetyMonitor`] accumulated over a run, moved out (not
/// cloned) when the run report is assembled.
#[derive(Debug)]
pub struct MonitorParts {
    /// All recorded violations (empty ⇔ mutual exclusion held).
    pub violations: Vec<Violation>,
    /// Raw exit→entry gaps (the synchronization-delay samples).
    pub sync_gaps: Vec<SimDuration>,
    /// Total CS entries observed.
    pub entries: u64,
    /// Total CS exits observed.
    pub exits: u64,
}

/// Tracks CS occupancy and collects safety/synchronization observations.
#[derive(Debug, Default)]
pub struct SafetyMonitor {
    occupant: Option<NodeId>,
    last_exit: Option<SimTime>,
    entries: u64,
    exits: u64,
    violations: Vec<Violation>,
    /// Gap between each CS exit and the immediately following CS entry.
    sync_gaps: Vec<SimDuration>,
}

impl SafetyMonitor {
    /// Fresh monitor, CS free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `node` entering the CS at `now`.
    ///
    /// If the CS is already occupied the violation is recorded (and the new
    /// node becomes the tracked occupant so subsequent exits stay coherent).
    pub fn enter(&mut self, node: NodeId, now: SimTime) {
        if let Some(holder) = self.occupant {
            self.violations.push(Violation {
                at: now,
                holder,
                intruder: node,
            });
        }
        if let Some(exit) = self.last_exit.take() {
            self.sync_gaps.push(now.saturating_since(exit));
        }
        self.occupant = Some(node);
        self.entries += 1;
    }

    /// Records `node` leaving the CS at `now`.
    ///
    /// Exiting a CS one does not hold is also a violation of the protocol
    /// contract; it is surfaced via a panic in debug builds and ignored in
    /// release (the monitor stays coherent either way).
    pub fn exit(&mut self, node: NodeId, now: SimTime) {
        debug_assert_eq!(
            self.occupant,
            Some(node),
            "node {node:?} exited a CS it does not hold at {now:?}"
        );
        if self.occupant == Some(node) {
            self.occupant = None;
            self.last_exit = Some(now);
        }
        self.exits += 1;
    }

    /// Removes `node` as occupant without recording a CS exit: its process
    /// died (crash fault) — a dead process cannot be "inside" the CS. No
    /// sync-gap sample is started, since the gap to the next entry would
    /// measure crash recovery, not a protocol handoff. Returns whether the
    /// node actually held the CS. Exit/entry counters are untouched.
    pub fn evict(&mut self, node: NodeId) -> bool {
        if self.occupant == Some(node) {
            self.occupant = None;
            true
        } else {
            false
        }
    }

    /// Current occupant, if any.
    pub fn occupant(&self) -> Option<NodeId> {
        self.occupant
    }

    /// Total number of CS entries observed.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total number of CS exits observed.
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// All recorded violations (empty ⇔ mutual exclusion held).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether mutual exclusion held for the whole run.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Raw exit→entry gaps. Under saturation these *are* the paper's
    /// synchronization delay samples; under light load they include idle
    /// time and must be filtered by the caller (see `rcv-workload`).
    pub fn sync_gaps(&self) -> &[SimDuration] {
        &self.sync_gaps
    }

    /// Consumes the monitor, moving its accumulated observations out
    /// without copying the (potentially large) violation/gap vectors.
    pub fn into_parts(self) -> MonitorParts {
        MonitorParts {
            violations: self.violations,
            sync_gaps: self.sync_gaps,
            entries: self.entries,
            exits: self.exits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn clean_alternation_is_safe() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(10));
        m.exit(NodeId::new(0), t(20));
        m.enter(NodeId::new(1), t(25));
        m.exit(NodeId::new(1), t(35));
        assert!(m.is_safe());
        assert_eq!(m.entries(), 2);
        assert_eq!(m.exits(), 2);
        assert_eq!(m.occupant(), None);
    }

    #[test]
    fn overlap_is_recorded() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(10));
        m.enter(NodeId::new(1), t(12));
        assert!(!m.is_safe());
        assert_eq!(
            m.violations(),
            &[Violation {
                at: t(12),
                holder: NodeId::new(0),
                intruder: NodeId::new(1)
            }]
        );
    }

    #[test]
    fn sync_gaps_measure_exit_to_entry() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(0));
        m.exit(NodeId::new(0), t(10));
        m.enter(NodeId::new(1), t(15)); // gap 5
        m.exit(NodeId::new(1), t(25));
        m.enter(NodeId::new(2), t(30)); // gap 5
        let gaps: Vec<u64> = m.sync_gaps().iter().map(|d| d.ticks()).collect();
        assert_eq!(gaps, vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "exited a CS it does not hold")]
    #[cfg(debug_assertions)]
    fn foreign_exit_panics_in_debug() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(1));
        m.exit(NodeId::new(1), t(2));
    }

    #[test]
    fn into_parts_moves_everything_out() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(0));
        m.exit(NodeId::new(0), t(10));
        m.enter(NodeId::new(1), t(15));
        let p = m.into_parts();
        assert!(p.violations.is_empty());
        assert_eq!(p.sync_gaps, vec![SimDuration::from_ticks(5)]);
        assert_eq!(p.entries, 2);
        assert_eq!(p.exits, 1);
    }

    #[test]
    fn evict_clears_occupancy_without_sync_gap() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(0));
        assert!(m.evict(NodeId::new(0)));
        assert_eq!(m.occupant(), None);
        assert_eq!(m.exits(), 0, "an eviction is not a protocol exit");
        m.enter(NodeId::new(1), t(50));
        assert!(
            m.sync_gaps().is_empty(),
            "recovery latency must not pollute the handoff metric"
        );
        assert!(m.is_safe());
        assert!(!m.evict(NodeId::new(0)), "no-op when not the occupant");
    }

    #[test]
    fn first_entry_has_no_gap() {
        let mut m = SafetyMonitor::new();
        m.enter(NodeId::new(0), t(7));
        assert!(m.sync_gaps().is_empty());
    }
}
