//! Bounded execution traces for debugging and exposition.
//!
//! When enabled ([`crate::SimConfig::trace_capacity`] > 0) the engine
//! records every event into a ring buffer; [`Trace::render`] produces a
//! human-readable narrative. Tracing costs one formatted string per
//! message, so it defaults to off for experiments.

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::time::SimTime;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The workload issued a request.
    Arrival {
        /// When.
        at: SimTime,
        /// Who.
        node: NodeId,
    },
    /// A message left a node.
    Send {
        /// When.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Message class label.
        kind: &'static str,
        /// Debug rendering of the payload.
        detail: String,
    },
    /// A message reached its receiver.
    Deliver {
        /// When.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Message class label.
        kind: &'static str,
    },
    /// A node entered the CS.
    CsEnter {
        /// When.
        at: SimTime,
        /// Who.
        node: NodeId,
    },
    /// A node left the CS.
    CsExit {
        /// When.
        at: SimTime,
        /// Who.
        node: NodeId,
    },
    /// A protocol timer fired.
    Timer {
        /// When.
        at: SimTime,
        /// Whose timer.
        node: NodeId,
        /// The protocol's tag.
        tag: u64,
    },
    /// A delivery was dropped by fault injection.
    Dropped {
        /// When.
        at: SimTime,
        /// The crashed receiver.
        to: NodeId,
    },
    /// A node went down (crash-stop or the start of a crash window).
    Crashed {
        /// When.
        at: SimTime,
        /// Who.
        node: NodeId,
        /// Whether the node held the CS at the moment it died (it is
        /// evicted from the safety monitor).
        held_cs: bool,
    },
    /// A node came back at the end of a crash window and ran its
    /// `on_restart` hook.
    Restarted {
        /// When.
        at: SimTime,
        /// Who.
        node: NodeId,
        /// Whether the protocol reported a recovered (rejoined) state.
        recovered: bool,
    },
    /// A message was lost in the network (fault injection).
    Lost {
        /// When it was sent.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::CsEnter { at, .. }
            | TraceEvent::CsExit { at, .. }
            | TraceEvent::Timer { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::Crashed { at, .. }
            | TraceEvent::Restarted { at, .. }
            | TraceEvent::Lost { at, .. } => at,
        }
    }

    fn render_line(&self) -> String {
        match self {
            TraceEvent::Arrival { at, node } => {
                format!("t={at:<6} {node} requests the CS")
            }
            TraceEvent::Send {
                at,
                from,
                to,
                kind,
                detail,
            } => {
                format!("t={at:<6} {from} --{kind}--> {to}  {detail}")
            }
            TraceEvent::Deliver { at, from, to, kind } => {
                format!("t={at:<6} {to} <--{kind}-- {from} (delivered)")
            }
            TraceEvent::CsEnter { at, node } => {
                format!("t={at:<6} {node} ENTERS the critical section")
            }
            TraceEvent::CsExit { at, node } => {
                format!("t={at:<6} {node} exits the critical section")
            }
            TraceEvent::Timer { at, node, tag } => {
                format!("t={at:<6} {node} timer fires (tag {tag})")
            }
            TraceEvent::Dropped { at, to } => {
                format!("t={at:<6} delivery to crashed {to} dropped")
            }
            TraceEvent::Crashed { at, node, held_cs } => {
                if *held_cs {
                    format!("t={at:<6} {node} CRASHES while holding the CS (evicted)")
                } else {
                    format!("t={at:<6} {node} CRASHES")
                }
            }
            TraceEvent::Restarted {
                at,
                node,
                recovered,
            } => {
                if *recovered {
                    format!("t={at:<6} {node} RESTARTS and rejoins (state recovered)")
                } else {
                    format!("t={at:<6} {node} RESTARTS with pre-crash state (no recovery)")
                }
            }
            TraceEvent::Lost { at, from, to } => {
                format!("t={at:<6} {from} -> {to} lost in the network")
            }
        }
    }
}

/// A bounded ring of [`TraceEvent`]s.
#[derive(Debug, Default)]
pub struct Trace {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Events discarded because the ring was full.
    overflowed: u64,
}

impl Trace {
    /// A trace keeping at most `capacity` events (0 disables recording).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            capacity,
            events: VecDeque::new(),
            overflowed: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (dropping the oldest when full).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.overflowed += 1;
        }
        self.events.push_back(ev);
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that fell off the ring.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Renders the full narrative, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.overflowed > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.overflowed
            ));
        }
        for ev in &self.events {
            out.push_str(&ev.render_line());
            out.push('\n');
        }
        out
    }

    /// Renders an ASCII occupancy timeline: one row per node, `#` while it
    /// holds the CS, `.` otherwise, one column per `tick_per_col` ticks.
    /// Makes the paper's one-hop synchronization delay visible at a glance
    /// (the gap between consecutive `#` blocks is Tn wide).
    pub fn render_gantt(&self, n: usize, tick_per_col: u64) -> String {
        assert!(tick_per_col >= 1);
        let mut spans: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        let mut open: Vec<Option<u64>> = vec![None; n];
        let mut end_tick = 0u64;
        for ev in &self.events {
            end_tick = end_tick.max(ev.at().ticks());
            match *ev {
                TraceEvent::CsEnter { at, node } if node.index() < n => {
                    open[node.index()] = Some(at.ticks());
                }
                TraceEvent::CsExit { at, node } if node.index() < n => {
                    if let Some(start) = open[node.index()].take() {
                        spans[node.index()].push((start, at.ticks()));
                    }
                }
                _ => {}
            }
        }
        // Still-open holds run to the trace end.
        for (i, o) in open.iter().enumerate() {
            if let Some(start) = o {
                spans[i].push((*start, end_tick));
            }
        }
        let cols = (end_tick / tick_per_col + 1) as usize;
        let mut out = String::new();
        for (i, node_spans) in spans.iter().enumerate() {
            let mut row = vec![b'.'; cols];
            for &(s, e) in node_spans {
                let from = (s / tick_per_col) as usize;
                let to = (e / tick_per_col) as usize;
                for c in row.iter_mut().take(to.min(cols - 1) + 1).skip(from) {
                    *c = b'#';
                }
            }
            out.push_str(&format!(
                "N{i:<3} |{}|\n",
                String::from_utf8(row).expect("ascii")
            ));
        }
        out.push_str(&format!(
            "      (one column = {tick_per_col} tick{}, total {end_tick} ticks)\n",
            if tick_per_col == 1 { "" } else { "s" }
        ));
        out
    }

    /// Renders only the events involving `node`.
    pub fn render_for(&self, node: NodeId) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let relevant = match ev {
                TraceEvent::Arrival { node: n, .. }
                | TraceEvent::CsEnter { node: n, .. }
                | TraceEvent::CsExit { node: n, .. }
                | TraceEvent::Timer { node: n, .. }
                | TraceEvent::Crashed { node: n, .. }
                | TraceEvent::Restarted { node: n, .. }
                | TraceEvent::Dropped { to: n, .. } => *n == node,
                TraceEvent::Send { from, to, .. }
                | TraceEvent::Deliver { from, to, .. }
                | TraceEvent::Lost { from, to, .. } => *from == node || *to == node,
            };
            if relevant {
                out.push_str(&ev.render_line());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::with_capacity(0);
        tr.record(TraceEvent::Arrival {
            at: t(1),
            node: NodeId::new(0),
        });
        assert!(tr.is_empty());
        assert!(!tr.enabled());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5u64 {
            tr.record(TraceEvent::CsEnter {
                at: t(i),
                node: NodeId::new(0),
            });
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.overflowed(), 3);
        let first = tr.events().next().unwrap();
        assert_eq!(first.at(), t(3));
        assert!(tr.render().contains("3 earlier events dropped"));
    }

    #[test]
    fn render_mentions_all_parties() {
        let mut tr = Trace::with_capacity(8);
        tr.record(TraceEvent::Send {
            at: t(5),
            from: NodeId::new(1),
            to: NodeId::new(2),
            kind: "RM",
            detail: "<N1,1>".into(),
        });
        let text = tr.render();
        assert!(text.contains("N1 --RM--> N2"));
        assert!(text.contains("<N1,1>"));
    }

    #[test]
    fn gantt_marks_occupancy() {
        let mut tr = Trace::with_capacity(16);
        tr.record(TraceEvent::CsEnter {
            at: t(0),
            node: NodeId::new(0),
        });
        tr.record(TraceEvent::CsExit {
            at: t(10),
            node: NodeId::new(0),
        });
        tr.record(TraceEvent::CsEnter {
            at: t(15),
            node: NodeId::new(1),
        });
        tr.record(TraceEvent::CsExit {
            at: t(25),
            node: NodeId::new(1),
        });
        let g = tr.render_gantt(2, 5);
        let lines: Vec<&str> = g.lines().collect();
        // Columns: 0-5-10-15-20-25 → 6 columns.
        assert!(lines[0].contains("|###..."), "{g}");
        assert!(lines[1].contains("|...###"), "{g}");
    }

    #[test]
    fn gantt_handles_open_hold() {
        let mut tr = Trace::with_capacity(8);
        tr.record(TraceEvent::CsEnter {
            at: t(2),
            node: NodeId::new(0),
        });
        tr.record(TraceEvent::Arrival {
            at: t(9),
            node: NodeId::new(1),
        });
        let g = tr.render_gantt(2, 1);
        assert!(g.lines().next().unwrap().contains("########"), "{g}");
    }

    #[test]
    fn per_node_filter() {
        let mut tr = Trace::with_capacity(8);
        tr.record(TraceEvent::CsEnter {
            at: t(1),
            node: NodeId::new(0),
        });
        tr.record(TraceEvent::CsEnter {
            at: t(2),
            node: NodeId::new(1),
        });
        tr.record(TraceEvent::Send {
            at: t(3),
            from: NodeId::new(1),
            to: NodeId::new(0),
            kind: "EM",
            detail: String::new(),
        });
        let for0 = tr.render_for(NodeId::new(0));
        assert!(for0.contains("N0 ENTERS"));
        assert!(!for0.contains("N1 ENTERS"));
        assert!(
            for0.contains("--EM-->"),
            "messages touching N0 are relevant"
        );
    }
}
