//! The sans-io protocol abstraction shared by every mutual exclusion
//! algorithm in this repository.
//!
//! A protocol node is a pure state machine: the engine (or the threaded
//! runtime in `rcv-runtime`) feeds it events — *you requested the CS*, *a
//! message arrived*, *you just left the CS* — and the node reacts by pushing
//! intents into a [`Ctx`]: send these messages, and/or enter the CS now.
//! Because the state machines never touch clocks, sockets or threads
//! directly, the same code is exercised by the deterministic discrete-event
//! simulator and by the real-thread runtime.

use core::fmt;

use rand::rngs::SmallRng;

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// A message type usable by the engines.
///
/// `kind` labels the message class (`"RM"`, `"EM"`, `"REQUEST"`, …) for the
/// per-class message counters that the paper's NME metric breaks down into;
/// `wire_size` is a rough payload size used by the bandwidth ablation.
pub trait ProtocolMessage: Clone + fmt::Debug + Send + 'static {
    /// Short label of the message class.
    fn kind(&self) -> &'static str;

    /// Approximate serialized size in bytes (default: unknown/1).
    fn wire_size(&self) -> usize {
        1
    }
}

/// Everything a node may ask of its environment while handling one event.
///
/// The engine drains the intents after the handler returns: messages are
/// handed to the network with a sampled propagation delay; an `enter_cs`
/// intent makes the engine move the node into the CS *at the current
/// instant* (the engine enforces that the protocol only does this when it
/// actually holds the privilege — a violation is recorded by the safety
/// monitor, not masked).
pub struct Ctx<'a, M> {
    me: NodeId,
    now: SimTime,
    rng: &'a mut SmallRng,
    outbox: &'a mut Vec<(NodeId, M)>,
    enter_cs: &'a mut bool,
    timers: &'a mut Vec<(SimDuration, u64)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context; used by engines, not by protocol code.
    pub fn new(
        me: NodeId,
        now: SimTime,
        rng: &'a mut SmallRng,
        outbox: &'a mut Vec<(NodeId, M)>,
        enter_cs: &'a mut bool,
        timers: &'a mut Vec<(SimDuration, u64)>,
    ) -> Self {
        Ctx {
            me,
            now,
            rng,
            outbox,
            enter_cs,
            timers,
        }
    }

    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current virtual (or wall-clock-mapped) time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-node randomness (e.g. RCV's random forwarding).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Queues `msg` for delivery to `to`.
    ///
    /// Sending to self is a protocol bug (none of the implemented algorithms
    /// ever needs it) and is rejected loudly in debug builds.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        debug_assert_ne!(to, self.me, "protocol sent a message to itself");
        self.outbox.push((to, msg));
    }

    /// Declares that this node now enters the critical section.
    #[inline]
    pub fn enter_cs(&mut self) {
        *self.enter_cs = true;
    }

    /// Arms a one-shot timer: [`MutexProtocol::on_timer`] fires with `tag`
    /// after `delay`. Timers cannot be cancelled — a protocol receiving a
    /// stale tag simply ignores it.
    #[inline]
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }
}

/// What a protocol did with itself in [`MutexProtocol::on_restart`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RestartOutcome {
    /// No recovery story: the pre-crash state was kept verbatim and the
    /// node resumes as if merely frozen. Honest for protocols where a
    /// crashed token holder stays the token holder — such runs only
    /// demand safety, never liveness.
    KeptState,
    /// The node rejoined in an idle state; whatever request was
    /// outstanding at the crash is gone, and the environment should
    /// re-issue it as a fresh request.
    RejoinedIdle,
    /// The node rejoined *and* internally re-adopted the request that was
    /// interrupted by the crash (write-ahead recovery). The environment
    /// must not re-issue anything — the request is live again.
    ResumedRequest,
}

impl RestartOutcome {
    /// Whether the node actually rejoined (anything but [`Self::KeptState`]).
    pub fn recovered(&self) -> bool {
        !matches!(self, RestartOutcome::KeptState)
    }
}

/// A distributed mutual exclusion protocol, one instance per node.
pub trait MutexProtocol {
    /// The single message type exchanged between nodes.
    type Message: ProtocolMessage;

    /// Short human-readable algorithm name (used in reports).
    fn name(&self) -> &'static str;

    /// The local process wants the CS. Guaranteed by the environment to be
    /// called only when this node has no outstanding request (the paper's
    /// one-outstanding-request-per-node model, §3).
    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// A message from `from` arrived (channels need not be FIFO).
    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<'_, Self::Message>);

    /// The node has just been granted the CS (after its `enter_cs` intent).
    fn on_cs_granted(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        let _ = ctx;
    }

    /// The node has just finished executing the CS (the paper's
    /// "Upon releasing the CS").
    fn on_cs_released(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// A timer armed with [`Ctx::set_timer`] fired. Default: ignore.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Message>) {
        let _ = (tag, ctx);
    }

    /// The node's process restarted after a bounded crash
    /// ([`crate::FaultPlan::with_crash_restart`]). Everything delivered
    /// during the outage was dropped; any request outstanding at the crash
    /// was retired by the environment at the crash instant.
    ///
    /// The returned [`RestartOutcome`] tells the environment what happened:
    /// [`RestartOutcome::RejoinedIdle`] makes it re-issue the interrupted
    /// request as a fresh one; [`RestartOutcome::ResumedRequest`] means the
    /// protocol re-adopted the interrupted request itself (the environment
    /// re-opens its bookkeeping but issues nothing). The default keeps the
    /// pre-crash state verbatim and reports
    /// [`RestartOutcome::KeptState`] — honest for protocols without a
    /// recovery story.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self::Message>) -> RestartOutcome {
        let _ = ctx;
        RestartOutcome::KeptState
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Clone, Debug)]
    struct Ping;
    impl ProtocolMessage for Ping {
        fn kind(&self) -> &'static str {
            "PING"
        }
    }

    #[test]
    fn ctx_collects_intents() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let mut enter = false;
        let mut timers = Vec::new();
        let mut ctx = Ctx::new(
            NodeId::new(0),
            SimTime::from_ticks(3),
            &mut rng,
            &mut outbox,
            &mut enter,
            &mut timers,
        );
        assert_eq!(ctx.me(), NodeId::new(0));
        assert_eq!(ctx.now().ticks(), 3);
        ctx.send(NodeId::new(1), Ping);
        ctx.send(NodeId::new(2), Ping);
        ctx.enter_cs();
        ctx.set_timer(crate::time::SimDuration::from_ticks(9), 7);
        assert_eq!(outbox.len(), 2);
        assert!(enter);
        assert_eq!(timers, vec![(crate::time::SimDuration::from_ticks(9), 7)]);
    }

    #[test]
    #[should_panic(expected = "message to itself")]
    #[cfg(debug_assertions)]
    fn self_send_is_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut outbox: Vec<(NodeId, Ping)> = Vec::new();
        let mut enter = false;
        let mut timers = Vec::new();
        let mut ctx = Ctx::new(
            NodeId::new(0),
            SimTime::ZERO,
            &mut rng,
            &mut outbox,
            &mut enter,
            &mut timers,
        );
        ctx.send(NodeId::new(0), Ping);
    }

    #[test]
    fn default_wire_size_is_one() {
        assert_eq!(Ping.wire_size(), 1);
        assert_eq!(Ping.kind(), "PING");
    }
}
