//! Virtual simulation time.
//!
//! The simulator measures time in abstract **time units** (tu), matching the
//! convention of the paper's evaluation (§6.2): the message propagation delay
//! is `Tn = 5` tu and the CS execution time is `Tc = 10` tu. Nothing in the
//! engine depends on those particular constants; they are plain parameters of
//! [`crate::SimConfig`].

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time (ticks since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time point from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Raw tick count since the epoch.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future (callers comparing unrelated clocks get a zero span rather
    /// than a panic).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Raw tick count of the span.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The span as a floating-point tick count, for statistics.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}tu", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_ticks(10) + SimDuration::from_ticks(5);
        assert_eq!(t.ticks(), 15);
        assert_eq!((t - SimTime::from_ticks(10)).ticks(), 5);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_ticks(3);
        let late = SimTime::from_ticks(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).ticks(), 6);
    }

    #[test]
    fn ordering_is_by_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimDuration::from_ticks(4) > SimDuration::ZERO);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_ticks(7);
        assert_eq!(t, SimTime::from_ticks(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SimTime::from_ticks(42)), "42");
        assert_eq!(format!("{:?}", SimTime::from_ticks(42)), "t42");
        assert_eq!(format!("{:?}", SimDuration::from_ticks(5)), "5tu");
    }
}
