//! Small, dependency-free summary statistics used by the metric pipeline.

use core::fmt;

/// Summary of a sample of non-negative measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
}

impl Summary {
    /// An all-zero summary for an empty sample.
    pub fn empty() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
        }
    }

    /// Computes a summary; `samples` need not be sorted.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in statistics sample"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.0} p50={:.1} p95={:.1} max={:.0}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p95, self.max
        )
    }
}

/// Nearest-rank percentile of an already sorted slice, `q` in `[0, 1]`.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.p95, 4.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0); // nearest-rank: ceil(0.5*4)=2nd element
        assert_eq!(s.p95, 4.0);
        assert!((s.std_dev - 1.118).abs() < 1e-3);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_edges() {
        let sorted = [10.0, 20.0, 30.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 30.0);
    }
}
