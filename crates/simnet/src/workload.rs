//! Workload abstraction: *when does each node want the critical section?*
//!
//! Concrete generators (burst, Poisson, trace replay) live in the
//! `rcv-workload` crate; the engine only needs this narrow interface. The
//! system model (§3 of the paper) allows at most one outstanding request per
//! node, so the natural shape is: schedule initial arrivals up front, then
//! schedule each node's *next* arrival when its previous request completes.

use rand::rngs::SmallRng;

use crate::ids::NodeId;
use crate::time::SimTime;

/// Collector for arrivals scheduled by a [`Workload`].
///
/// Wraps the raw list so workload implementations cannot reorder or drop
/// entries already scheduled, and so the engine can validate timestamps.
#[derive(Debug, Default)]
pub struct ArrivalSink {
    pending: Vec<(SimTime, NodeId)>,
}

impl ArrivalSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `node` to request the CS at `at`.
    pub fn schedule(&mut self, at: SimTime, node: NodeId) {
        self.pending.push((at, node));
    }

    /// Drains scheduled arrivals (engine-side).
    pub fn drain(&mut self) -> impl Iterator<Item = (SimTime, NodeId)> + '_ {
        self.pending.drain(..)
    }

    /// Number of queued arrivals not yet drained.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no arrivals are queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A source of CS request arrivals.
pub trait Workload {
    /// Called once before the simulation starts; schedule the initial
    /// arrival(s). `n` is the node count.
    fn init(&mut self, n: usize, rng: &mut SmallRng, sink: &mut ArrivalSink);

    /// Called when `node`'s request completes (it exited the CS) at `now`;
    /// may schedule that node's next arrival. Must only schedule times
    /// `>= now`.
    fn on_complete(
        &mut self,
        node: NodeId,
        now: SimTime,
        rng: &mut SmallRng,
        sink: &mut ArrivalSink,
    );
}

/// The trivial workload: every node requests exactly once, all at `t = 0`.
///
/// This is the paper's Figure 4/5 scenario ("all nodes are requesting the CS
/// simultaneously as soon as the system is initialized. Every node only
/// requests once."). Kept here (rather than `rcv-workload`) because the
/// simnet unit tests need *some* workload.
#[derive(Clone, Debug, Default)]
pub struct BurstOnce;

impl Workload for BurstOnce {
    fn init(&mut self, n: usize, _rng: &mut SmallRng, sink: &mut ArrivalSink) {
        for node in NodeId::all(n) {
            sink.schedule(SimTime::ZERO, node);
        }
    }

    fn on_complete(
        &mut self,
        _node: NodeId,
        _now: SimTime,
        _rng: &mut SmallRng,
        _sink: &mut ArrivalSink,
    ) {
    }
}

/// A workload driven by an explicit list of `(time, node)` arrivals.
///
/// The engine enforces the one-outstanding-request rule, so a trace that
/// schedules a node again before its previous request finished is a test
/// bug and will panic; use completion-driven workloads for closed loops.
#[derive(Clone, Debug)]
pub struct FixedTrace {
    arrivals: Vec<(SimTime, NodeId)>,
}

impl FixedTrace {
    /// Builds a trace workload; arrivals are sorted by `(time, node)`.
    pub fn new(mut arrivals: Vec<(SimTime, NodeId)>) -> Self {
        arrivals.sort_by_key(|&(t, n)| (t, n));
        FixedTrace { arrivals }
    }
}

impl Workload for FixedTrace {
    fn init(&mut self, _n: usize, _rng: &mut SmallRng, sink: &mut ArrivalSink) {
        for &(at, node) in &self.arrivals {
            sink.schedule(at, node);
        }
    }

    fn on_complete(
        &mut self,
        _node: NodeId,
        _now: SimTime,
        _rng: &mut SmallRng,
        _sink: &mut ArrivalSink,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn burst_schedules_everyone_at_zero() {
        let mut w = BurstOnce;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut sink = ArrivalSink::new();
        w.init(4, &mut rng, &mut sink);
        let all: Vec<_> = sink.drain().collect();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|&(t, _)| t == SimTime::ZERO));
    }

    #[test]
    fn fixed_trace_sorts() {
        let mut w = FixedTrace::new(vec![
            (SimTime::from_ticks(9), NodeId::new(1)),
            (SimTime::from_ticks(2), NodeId::new(0)),
        ]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut sink = ArrivalSink::new();
        w.init(2, &mut rng, &mut sink);
        let all: Vec<_> = sink.drain().collect();
        assert_eq!(all[0].0.ticks(), 2);
        assert_eq!(all[1].0.ticks(), 9);
    }

    #[test]
    fn sink_len_tracks() {
        let mut sink = ArrivalSink::new();
        assert!(sink.is_empty());
        sink.schedule(SimTime::ZERO, NodeId::new(0));
        assert_eq!(sink.len(), 1);
        let _ = sink.drain().count();
        assert!(sink.is_empty());
    }
}
