//! Deterministic retry/timeout policies for protocol timer machinery.
//!
//! A [`RetryPolicy`] decides *when to give up waiting* and try again: an
//! initial deadline, exponential backoff with a cap, optional additive
//! jitter, and an optional retry budget. Protocols arm their
//! retransmission timers through it instead of hard-coding an interval
//! (the RCV retransmission extension used to be a fixed-interval bolt-on;
//! `RetryPolicy::fixed` reproduces that behavior bit-identically).
//!
//! Determinism contract: a policy with `jitter == 0` consumes **no**
//! randomness, so enabling such a policy — or none at all — leaves every
//! RNG stream of a simulation bit-identical to a policy-free run. Jittered
//! policies draw from the caller's seeded per-node RNG, so a master seed
//! still fully determines the retransmit schedule.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimDuration;

/// When to retransmit: deadline, exponential backoff, jitter, budget.
///
/// `Copy + Hash` on purpose: policies live inside protocol configuration
/// that is folded into model-checker state digests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Initial deadline in ticks: how long to wait before the first
    /// retransmission.
    pub deadline: u64,
    /// Cap for the doubling backoff, in ticks. Equal to `deadline` for a
    /// fixed-interval policy.
    pub max_deadline: u64,
    /// Maximum additive jitter in ticks: each armed deadline is stretched
    /// by a uniform draw from `[0, jitter]`. Zero = no draw at all (the
    /// determinism contract above).
    pub jitter: u64,
    /// Maximum number of retransmissions (`None` = retry forever).
    pub budget: Option<u32>,
}

impl RetryPolicy {
    /// Fixed-interval policy: retransmit every `ticks`, forever, no
    /// jitter. Bit-identical to the historical `with_retransmit` RCV
    /// extension.
    pub fn fixed(ticks: u64) -> Self {
        assert!(ticks >= 1, "retry deadline must be >= 1 tick");
        RetryPolicy {
            deadline: ticks,
            max_deadline: ticks,
            jitter: 0,
            budget: None,
        }
    }

    /// Doubling backoff from `base` up to `cap`, forever, no jitter.
    pub fn backoff(base: u64, cap: u64) -> Self {
        assert!(base >= 1, "retry deadline must be >= 1 tick");
        assert!(cap >= base, "backoff cap must be >= the initial deadline");
        RetryPolicy {
            deadline: base,
            max_deadline: cap,
            jitter: 0,
            budget: None,
        }
    }

    /// Adds uniform additive jitter in `[0, jitter]` ticks (builder-style).
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Caps the number of retransmissions (builder-style).
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The deadline to arm before retransmission number `attempt + 1`
    /// (`attempt` = retransmissions already performed, so the initial
    /// send arms with `attempt = 0`). Returns `None` once the budget is
    /// exhausted — the caller stops re-arming.
    ///
    /// Jitter, when configured, is drawn from `rng`; a zero-jitter policy
    /// never touches it.
    pub fn backoff_delay(&self, attempt: u32, rng: &mut SmallRng) -> Option<SimDuration> {
        if let Some(budget) = self.budget {
            if attempt >= budget {
                return None;
            }
        }
        let doubled = if attempt >= 63 {
            u64::MAX
        } else {
            self.deadline.saturating_mul(1u64 << attempt)
        };
        let mut ticks = doubled.min(self.max_deadline);
        if self.jitter > 0 {
            ticks = ticks.saturating_add(rng.gen_range(0..=self.jitter));
        }
        Some(SimDuration::from_ticks(ticks))
    }

    /// Whether this policy ever gives up (has a finite budget).
    pub fn is_bounded(&self) -> bool {
        self.budget.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn fixed_policy_never_backs_off_and_never_draws() {
        let p = RetryPolicy::fixed(2_000);
        let mut r = rng(7);
        let before = r.clone();
        for attempt in 0..10 {
            assert_eq!(
                p.backoff_delay(attempt, &mut r),
                Some(SimDuration::from_ticks(2_000))
            );
        }
        // Zero-jitter policies must consume no randomness (the matrix
        // fingerprint stability of policy-off cells rests on this).
        assert_eq!(r.gen::<u64>(), before.clone().gen::<u64>());
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let p = RetryPolicy::backoff(100, 800);
        let mut r = rng(0);
        let ds: Vec<u64> = (0..6)
            .map(|a| p.backoff_delay(a, &mut r).unwrap().ticks())
            .collect();
        assert_eq!(ds, vec![100, 200, 400, 800, 800, 800]);
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        let p = RetryPolicy::backoff(100, u64::MAX);
        let mut r = rng(0);
        assert_eq!(p.backoff_delay(200, &mut r).unwrap().ticks(), u64::MAX);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let p = RetryPolicy::fixed(1_000).with_jitter(50);
        let mut r = rng(3);
        for attempt in 0..200 {
            let d = p.backoff_delay(attempt % 4, &mut r).unwrap().ticks();
            assert!((1_000..=1_050).contains(&d), "jittered delay {d} escaped");
        }
    }

    #[test]
    fn budget_exhaustion_stops_rearming() {
        let p = RetryPolicy::fixed(500).with_budget(2);
        let mut r = rng(1);
        assert!(p.backoff_delay(0, &mut r).is_some());
        assert!(p.backoff_delay(1, &mut r).is_some());
        assert_eq!(p.backoff_delay(2, &mut r), None, "budget spent");
        assert_eq!(p.backoff_delay(99, &mut r), None);
        assert!(p.is_bounded());
        assert!(!RetryPolicy::fixed(500).is_bounded());
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = RetryPolicy::backoff(100, 1_600).with_jitter(25);
        let schedule = |seed: u64| -> Vec<u64> {
            let mut r = rng(seed);
            (0..8)
                .map(|a| p.backoff_delay(a, &mut r).unwrap().ticks())
                .collect()
        };
        assert_eq!(schedule(42), schedule(42), "seed determines the schedule");
        assert_ne!(
            schedule(42),
            schedule(43),
            "different seeds must actually jitter differently"
        );
    }

    #[test]
    #[should_panic(expected = "must be >= 1 tick")]
    fn zero_deadline_rejected() {
        RetryPolicy::fixed(0);
    }

    #[test]
    #[should_panic(expected = "cap must be >=")]
    fn cap_below_base_rejected() {
        RetryPolicy::backoff(100, 50);
    }
}
