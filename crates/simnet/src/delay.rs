//! Message propagation delay models.
//!
//! The paper's simulation uses a constant delay `Tn = 5` tu between every
//! pair of nodes. Because one of the algorithm's headline claims is that it
//! **does not require FIFO channels**, we also provide jittered models under
//! which two messages on the same channel routinely overtake one another —
//! the integration suite runs the full safety battery under these.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::SimDuration;

/// How long a message takes from send to delivery.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this long (the paper's model; FIFO by
    /// construction since ties fire in insertion order).
    Constant(SimDuration),
    /// Uniformly random in `[min, max]` (inclusive). With `max > min`,
    /// channels are *not* FIFO.
    Uniform {
        /// Smallest possible delay.
        min: SimDuration,
        /// Largest possible delay.
        max: SimDuration,
    },
    /// Exponentially distributed with the given mean, clamped to
    /// `[1, cap]` ticks. Heavy tail ⇒ aggressive reordering.
    Exponential {
        /// Mean delay in ticks (before clamping).
        mean: f64,
        /// Upper clamp in ticks.
        cap: u64,
    },
}

impl DelayModel {
    /// The paper's constant `Tn = 5` tu.
    pub fn paper_constant() -> Self {
        DelayModel::Constant(SimDuration::from_ticks(5))
    }

    /// A jittered model centred on the paper's `Tn = 5` that reorders
    /// messages (used by the non-FIFO battery).
    pub fn paper_jittered() -> Self {
        DelayModel::Uniform {
            min: SimDuration::from_ticks(1),
            max: SimDuration::from_ticks(9),
        }
    }

    /// Draws one delay.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform delay with min > max");
                SimDuration::from_ticks(rng.gen_range(min.ticks()..=max.ticks()))
            }
            DelayModel::Exponential { mean, cap } => {
                debug_assert!(mean > 0.0, "exponential delay with non-positive mean");
                // Inverse-CDF sampling; `1 - u` avoids ln(0).
                let u: f64 = rng.gen::<f64>();
                let ticks = (-mean * (1.0 - u).ln()).round() as u64;
                SimDuration::from_ticks(ticks.clamp(1, cap.max(1)))
            }
        }
    }

    /// Largest delay this model can produce, in ticks. Used by the engine
    /// to size the calendar queue's bucket ring so every delivery takes the
    /// O(1) path.
    pub fn max_ticks(&self) -> u64 {
        match *self {
            DelayModel::Constant(d) => d.ticks(),
            DelayModel::Uniform { max, .. } => max.ticks(),
            DelayModel::Exponential { cap, .. } => cap.max(1),
        }
    }

    /// Mean delay in ticks, used by analytic cross-checks.
    pub fn mean_ticks(&self) -> f64 {
        match *self {
            DelayModel::Constant(d) => d.ticks() as f64,
            DelayModel::Uniform { min, max } => (min.ticks() + max.ticks()) as f64 / 2.0,
            DelayModel::Exponential { mean, .. } => mean,
        }
    }

    /// Whether two messages on one channel can be delivered out of order.
    pub fn can_reorder(&self) -> bool {
        match *self {
            DelayModel::Constant(_) => false,
            DelayModel::Uniform { min, max } => min != max,
            DelayModel::Exponential { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::paper_constant();
        let mut r = rng();
        for _ in 0..32 {
            assert_eq!(m.sample(&mut r).ticks(), 5);
        }
        assert!(!m.can_reorder());
        assert_eq!(m.mean_ticks(), 5.0);
        assert_eq!(m.max_ticks(), 5);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = DelayModel::Uniform {
            min: SimDuration::from_ticks(2),
            max: SimDuration::from_ticks(8),
        };
        let mut r = rng();
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let d = m.sample(&mut r).ticks();
            assert!((2..=8).contains(&d));
            seen_low |= d == 2;
            seen_high |= d == 8;
        }
        assert!(
            seen_low && seen_high,
            "uniform sampler never reached its bounds"
        );
        assert!(m.can_reorder());
        assert_eq!(m.mean_ticks(), 5.0);
        assert_eq!(m.max_ticks(), 8);
    }

    #[test]
    fn uniform_degenerate_is_fifo() {
        let m = DelayModel::Uniform {
            min: SimDuration::from_ticks(5),
            max: SimDuration::from_ticks(5),
        };
        assert!(!m.can_reorder());
    }

    #[test]
    fn exponential_respects_cap_and_floor() {
        let m = DelayModel::Exponential { mean: 5.0, cap: 20 };
        let mut r = rng();
        for _ in 0..2000 {
            let d = m.sample(&mut r).ticks();
            assert!((1..=20).contains(&d));
        }
        assert!(m.can_reorder());
        assert_eq!(m.max_ticks(), 20);
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let m = DelayModel::Exponential {
            mean: 5.0,
            cap: 1000,
        };
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut r).ticks()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (4.3..5.7).contains(&mean),
            "empirical mean {mean} too far from 5.0"
        );
    }

    #[test]
    fn paper_jittered_reorders() {
        assert!(DelayModel::paper_jittered().can_reorder());
    }
}
