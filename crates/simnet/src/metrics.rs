//! Per-run metric collection: the paper's three performance measures.
//!
//! * **NME** — number of messages exchanged per CS execution (§6: "message
//!   complexity"), with a per-message-class breakdown (RM/EM/IM, REQUEST/
//!   REPLY, …).
//! * **RT** — response time: from the instant a request is issued until the
//!   requester *enters* the CS. (The paper's prose definition — "until its CS
//!   execution is over" — is inconsistent with its own light-load formula
//!   `([N/2]+2)·Tn`, which excludes `Tc`; we use the entry-time reading and
//!   record exit times too so either can be reported.)
//! * **Synchronization delay** — collected by the [`crate::SafetyMonitor`].

use std::collections::BTreeMap;

use crate::ids::NodeId;
use crate::stats::Summary;
use crate::time::{SimDuration, SimTime};

/// Lifecycle of one CS request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// The requesting node.
    pub node: NodeId,
    /// When the request was issued (RM initialized).
    pub issued: SimTime,
    /// When the requester entered the CS.
    pub entered: Option<SimTime>,
    /// When the requester left the CS.
    pub exited: Option<SimTime>,
}

impl RequestRecord {
    /// Response time (issue → entry), if the request completed its wait.
    ///
    /// Saturating: a hand-built (or deserialized) record whose `entered`
    /// precedes `issued` reports zero rather than panicking — metric
    /// accessors must stay total even on partial or malformed lifecycles.
    pub fn response_time(&self) -> Option<SimDuration> {
        self.entered.map(|e| e.saturating_since(self.issued))
    }

    /// Total turnaround (issue → exit). Saturating, like
    /// [`RequestRecord::response_time`].
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.exited.map(|e| e.saturating_since(self.issued))
    }
}

/// Aggregated counters for one simulation run.
#[derive(Debug, Default)]
pub struct SimMetrics {
    /// Completed + in-flight request lifecycles.
    records: Vec<RequestRecord>,
    /// Open request per node → index into `records`.
    open: BTreeMap<NodeId, usize>,
    /// Total messages handed to the network.
    messages_sent: u64,
    /// Message counts by protocol-defined class label. A protocol has a
    /// handful of classes at most, so a linear probe beats a tree on the
    /// per-message path.
    by_class: Vec<(&'static str, u64)>,
    /// Total approximate wire bytes.
    wire_bytes: u64,
    /// Deliveries dropped by fault injection (crashed receiver).
    messages_dropped: u64,
    /// Messages lost in the network by fault injection (never delivered).
    messages_lost: u64,
    /// Nodes that went down (crash-stop instants and crash-window starts).
    crashes: u64,
    /// Nodes that came back at the end of a crash window.
    restarts: u64,
    /// Requests abandoned because their node crashed while they were
    /// outstanding.
    requests_aborted: u64,
    /// Interrupted requests re-adopted by their node after a restart.
    requests_resumed: u64,
}

impl SimMetrics {
    /// Creates an empty metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was issued by `node` at `now`.
    ///
    /// Panics if the node already has an outstanding request — the system
    /// model (§3) forbids that, and the workload layer enforces it.
    pub fn request_issued(&mut self, node: NodeId, now: SimTime) {
        let prev = self.open.insert(node, {
            self.records.push(RequestRecord {
                node,
                issued: now,
                entered: None,
                exited: None,
            });
            self.records.len() - 1
        });
        assert!(
            prev.is_none(),
            "{node:?} issued a second outstanding request"
        );
    }

    /// `node` entered the CS at `now`.
    pub fn cs_entered(&mut self, node: NodeId, now: SimTime) {
        if let Some(&idx) = self.open.get(&node) {
            let rec = &mut self.records[idx];
            assert!(
                rec.entered.is_none(),
                "{node:?} entered the CS twice for one request"
            );
            rec.entered = Some(now);
        }
    }

    /// `node` exited the CS at `now`; its request is now complete.
    pub fn cs_exited(&mut self, node: NodeId, now: SimTime) {
        if let Some(idx) = self.open.remove(&node) {
            self.records[idx].exited = Some(now);
        }
    }

    /// One message of class `kind` and approximate size `bytes` was sent.
    pub fn message_sent(&mut self, kind: &'static str, bytes: usize) {
        self.messages_sent += 1;
        match self.by_class.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, c)) => *c += 1,
            None => self.by_class.push((kind, 1)),
        }
        self.wire_bytes += bytes as u64;
    }

    /// A delivery was dropped because the receiver had crashed.
    pub fn message_dropped(&mut self) {
        self.messages_dropped += 1;
    }

    /// Deliveries dropped by fault injection.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// A sent message was lost in the network by fault injection.
    pub fn message_lost(&mut self) {
        self.messages_lost += 1;
    }

    /// Messages lost in the network by fault injection.
    pub fn messages_lost(&self) -> u64 {
        self.messages_lost
    }

    /// A node went down.
    pub fn node_crashed(&mut self) {
        self.crashes += 1;
    }

    /// A node restarted at the end of its crash window.
    pub fn node_restarted(&mut self) {
        self.restarts += 1;
    }

    /// Nodes that went down.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Nodes that restarted.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// `node` crashed with a request outstanding: the request is abandoned.
    /// Its record stays (for post-mortem inspection) but no longer counts
    /// as outstanding, so a run where every *live* request completed is not
    /// reported as deadlocked. Returns whether a request was actually open.
    pub fn request_aborted(&mut self, node: NodeId) -> bool {
        let aborted = self.open.remove(&node).is_some();
        self.requests_aborted += u64::from(aborted);
        aborted
    }

    /// Requests abandoned by crashes.
    pub fn requests_aborted(&self) -> u64 {
        self.requests_aborted
    }

    /// A restarted node re-adopted the request its crash had interrupted
    /// (write-ahead recovery): a fresh lifecycle opens at `now`, so its
    /// eventual completion is counted and its response time is measured
    /// from the resume instant — the outage is recovery latency, not
    /// protocol wait. The abort recorded at the crash stays counted.
    pub fn request_resumed(&mut self, node: NodeId, now: SimTime) {
        self.requests_resumed += 1;
        self.request_issued(node, now);
    }

    /// Interrupted requests re-adopted by their node after a restart.
    pub fn requests_resumed(&self) -> u64 {
        self.requests_resumed
    }

    /// Whether `node` currently has an outstanding request.
    pub fn has_outstanding(&self, node: NodeId) -> bool {
        self.open.contains_key(&node)
    }

    /// Number of requests that ran to completion (exited the CS).
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.exited.is_some()).count()
    }

    /// Number of requests still waiting or executing.
    pub fn outstanding(&self) -> usize {
        self.open.len()
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total approximate bytes sent.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Message count per class label, sorted by label.
    pub fn messages_by_class(&self) -> BTreeMap<&'static str, u64> {
        self.by_class.iter().copied().collect()
    }

    /// All request records (completed and in-flight).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// **NME**: mean number of messages exchanged per completed CS
    /// execution. `None` when nothing completed.
    pub fn nme(&self) -> Option<f64> {
        let done = self.completed();
        (done > 0).then(|| self.messages_sent as f64 / done as f64)
    }

    /// Summary of response times over completed waits.
    ///
    /// Total on empty and partial runs: requests that never entered the
    /// CS contribute no sample, and an empty sample set yields the empty
    /// [`Summary`] (`count == 0`) rather than a panic.
    pub fn response_time(&self) -> Summary {
        let samples: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.response_time())
            .map(|d| d.as_f64())
            .collect();
        Summary::of(&samples)
    }

    /// Summary of turnaround times (issue → CS exit) over completed
    /// requests — the paper's alternative prose reading of "response
    /// time" (see the module docs). Total on empty and partial runs,
    /// like [`SimMetrics::response_time`].
    pub fn turnaround(&self) -> Summary {
        let samples: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.turnaround())
            .map(|d| d.as_f64())
            .collect();
        Summary::of(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn lifecycle_and_nme() {
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.message_sent("RM", 10);
        m.message_sent("RM", 10);
        m.message_sent("EM", 8);
        m.cs_entered(NodeId::new(0), t(15));
        m.cs_exited(NodeId::new(0), t(25));
        assert_eq!(m.completed(), 1);
        assert_eq!(m.messages_sent(), 3);
        assert_eq!(m.nme(), Some(3.0));
        assert_eq!(m.wire_bytes(), 28);
        assert_eq!(m.messages_by_class()["RM"], 2);
        let rt = m.response_time();
        assert_eq!(rt.count, 1);
        assert_eq!(rt.mean, 15.0);
    }

    #[test]
    fn second_request_after_completion_is_fine() {
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.cs_entered(NodeId::new(0), t(5));
        m.cs_exited(NodeId::new(0), t(10));
        m.request_issued(NodeId::new(0), t(20));
        assert_eq!(m.records().len(), 2);
        assert!(m.has_outstanding(NodeId::new(0)));
    }

    #[test]
    #[should_panic(expected = "second outstanding request")]
    fn double_request_panics() {
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.request_issued(NodeId::new(0), t(1));
    }

    #[test]
    #[should_panic(expected = "entered the CS twice")]
    fn double_entry_panics() {
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.cs_entered(NodeId::new(0), t(1));
        m.cs_entered(NodeId::new(0), t(2));
    }

    #[test]
    fn aborted_request_leaves_no_outstanding_trace() {
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.node_crashed();
        assert!(m.request_aborted(NodeId::new(0)));
        assert_eq!(m.outstanding(), 0, "abandoned request is retired");
        assert_eq!(m.completed(), 0, "but it never completed");
        assert_eq!(m.requests_aborted(), 1);
        assert_eq!(m.crashes(), 1);
        // The node can issue again after its restart.
        m.node_restarted();
        m.request_issued(NodeId::new(0), t(50));
        assert_eq!(m.restarts(), 1);
        assert!(!m.request_aborted(NodeId::new(1)), "nothing open for N1");
    }

    #[test]
    fn resumed_request_opens_a_fresh_lifecycle() {
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.node_crashed();
        assert!(m.request_aborted(NodeId::new(0)));
        m.node_restarted();
        m.request_resumed(NodeId::new(0), t(40));
        assert_eq!(m.requests_resumed(), 1);
        assert!(m.has_outstanding(NodeId::new(0)));
        m.cs_entered(NodeId::new(0), t(45));
        m.cs_exited(NodeId::new(0), t(55));
        assert_eq!(m.completed(), 1);
        // Response time runs from the resume, not the original arrival.
        assert_eq!(m.response_time().mean, 5.0);
        assert_eq!(m.requests_aborted(), 1, "the interruption stays counted");
    }

    #[test]
    fn nme_none_when_nothing_completed() {
        let mut m = SimMetrics::new();
        m.message_sent("RM", 1);
        assert_eq!(m.nme(), None);
    }

    #[test]
    fn empty_run_is_total() {
        // A run that never issued a request: every accessor answers.
        let m = SimMetrics::new();
        assert_eq!(m.records(), &[]);
        assert_eq!(m.completed(), 0);
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.nme(), None);
        assert_eq!(m.response_time().count, 0);
        assert_eq!(m.turnaround().count, 0);
        assert!(m.messages_by_class().is_empty());
    }

    #[test]
    fn partial_run_summaries_skip_incomplete_lifecycles() {
        // Node 0 completes; node 1 entered but never exited (run cut off
        // mid-CS); node 2 is still waiting. No accessor may panic, and
        // each summary counts exactly the lifecycles that reached its
        // stage.
        let mut m = SimMetrics::new();
        m.request_issued(NodeId::new(0), t(0));
        m.cs_entered(NodeId::new(0), t(4));
        m.cs_exited(NodeId::new(0), t(9));
        m.request_issued(NodeId::new(1), t(1));
        m.cs_entered(NodeId::new(1), t(6));
        m.request_issued(NodeId::new(2), t(2));

        assert_eq!(m.completed(), 1);
        assert_eq!(m.outstanding(), 2);
        let rt = m.response_time();
        assert_eq!(rt.count, 2, "both entries produced a response sample");
        assert_eq!(rt.mean, (4.0 + 5.0) / 2.0);
        let ta = m.turnaround();
        assert_eq!(ta.count, 1, "only the completed request has turnaround");
        assert_eq!(ta.mean, 9.0);
        assert_eq!(m.records().len(), 3);
    }

    #[test]
    fn malformed_record_durations_saturate_instead_of_panicking() {
        let r = RequestRecord {
            node: NodeId::new(0),
            issued: t(10),
            entered: Some(t(5)),
            exited: Some(t(7)),
        };
        assert_eq!(r.response_time().unwrap().ticks(), 0);
        assert_eq!(r.turnaround().unwrap().ticks(), 0);
    }

    #[test]
    fn record_durations() {
        let r = RequestRecord {
            node: NodeId::new(3),
            issued: t(10),
            entered: Some(t(30)),
            exited: Some(t(45)),
        };
        assert_eq!(r.response_time().unwrap().ticks(), 20);
        assert_eq!(r.turnaround().unwrap().ticks(), 35);
    }
}
